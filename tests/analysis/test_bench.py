"""Tests for the benchmark measurement library behind ``repro bench``."""

from __future__ import annotations

import pytest

from repro.analysis.bench import (
    BATCHED_REGIMES,
    ENGINE_SPEEDUP_TARGET,
    batched_fleet_gate_failures,
    engine_gate_failures,
    measure_batched_fleet,
    measure_engine_throughput,
    run_suites,
)


class TestMeasureBatchedFleet:
    def test_tiny_configuration_reports_all_regimes(self):
        results = measure_batched_fleet(memories=4, repeats=1, warmup=False)
        assert results["config"]["memories"] == 4
        assert [row["regime"] for row in results["rows"]] == [
            regime for regime, _, _ in BATCHED_REGIMES
        ]
        for row in results["rows"]:
            assert row["bit_identical"] is True
            assert row["numpy_s"] > 0 and row["batched_s"] > 0
            assert row["speedup"] == row["numpy_s"] / row["batched_s"]
        gated = [row for row in results["rows"] if row["gated"]]
        assert {row["regime"] for row in gated} == {"screening", "diagnostic"}


class TestGateFailures:
    @staticmethod
    def row(regime="diagnostic", speedup=3.0, target=2.5, gated=True):
        return {
            "regime": regime,
            "gated": gated,
            "speedup_target": target,
            "speedup": speedup,
        }

    def test_passing_rows_produce_no_failures(self):
        assert batched_fleet_gate_failures({"rows": [self.row()]}) == []

    def test_missed_target_reported(self):
        failures = batched_fleet_gate_failures({"rows": [self.row(speedup=1.1)]})
        assert len(failures) == 1
        assert "below the 2.5x target" in failures[0]

    def test_ungated_rows_never_fail(self):
        rows = [self.row(regime="heavy-diagnostic", speedup=0.5, target=None,
                         gated=False)]
        assert batched_fleet_gate_failures({"rows": rows}) == []

    def test_engine_gate_enforces_speedup_floor(self):
        passing = {"single_campaign": {"speedup": ENGINE_SPEEDUP_TARGET + 1}}
        failing = {"single_campaign": {"speedup": 2.0}}
        assert engine_gate_failures(passing) == []
        failures = engine_gate_failures(failing)
        assert len(failures) == 1 and "below the 5x target" in failures[0]


class TestRunSuites:
    def test_engine_suite_quick(self):
        payload, failures = run_suites(("engine",), quick=True)
        assert failures == []
        engine = payload["suites"]["engine"]
        assert engine["single_campaign"]["bit_identical"] is True
        assert engine["single_campaign"]["speedup"] > 1.0
        assert engine["fleet"]["campaigns"] == 4
        assert engine["fleet"]["campaigns_per_sec"] > 0

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suites(("nope",))


class TestMeasureEngineThroughput:
    def test_records_plan_cache_hit_rate(self):
        results = measure_engine_throughput(
            memories=2, fleet_campaigns=2, workers=1
        )
        assert results["config"]["fleet_workers"] == 1
        fleet = results["fleet"]
        assert fleet["plan_cache_hit_rate"] is None or (
            0.0 <= fleet["plan_cache_hit_rate"] <= 1.0
        )
