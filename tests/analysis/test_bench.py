"""Tests for the benchmark measurement library behind ``repro bench``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    BATCHED_REGIMES,
    ENGINE_SPEEDUP_TARGET,
    append_trajectory,
    batched_fleet_gate_failures,
    engine_gate_failures,
    git_revision,
    measure_batched_fleet,
    measure_engine_throughput,
    run_suites,
    trajectory_entry,
)
from repro.telemetry.report import TelemetryReport


class TestMeasureBatchedFleet:
    def test_tiny_configuration_reports_all_regimes(self):
        results = measure_batched_fleet(memories=4, repeats=1, warmup=False)
        assert results["config"]["memories"] == 4
        assert [row["regime"] for row in results["rows"]] == [
            regime for regime, _, _ in BATCHED_REGIMES
        ]
        for row in results["rows"]:
            assert row["bit_identical"] is True
            assert row["numpy_s"] > 0 and row["batched_s"] > 0
            assert row["speedup"] == row["numpy_s"] / row["batched_s"]
        gated = [row for row in results["rows"] if row["gated"]]
        assert {row["regime"] for row in gated} == {
            "screening",
            "diagnostic",
            "heavy-diagnostic",
        }


class TestGateFailures:
    @staticmethod
    def row(regime="diagnostic", speedup=3.0, target=2.5, gated=True):
        return {
            "regime": regime,
            "gated": gated,
            "speedup_target": target,
            "speedup": speedup,
        }

    def test_passing_rows_produce_no_failures(self):
        assert batched_fleet_gate_failures({"rows": [self.row()]}) == []

    def test_missed_target_reported(self):
        failures = batched_fleet_gate_failures({"rows": [self.row(speedup=1.1)]})
        assert len(failures) == 1
        assert "below the 2.5x target" in failures[0]

    def test_ungated_rows_never_fail(self):
        rows = [self.row(regime="heavy-diagnostic", speedup=0.5, target=None,
                         gated=False)]
        assert batched_fleet_gate_failures({"rows": rows}) == []

    def test_engine_gate_enforces_speedup_floor(self):
        passing = {"single_campaign": {"speedup": ENGINE_SPEEDUP_TARGET + 1}}
        failing = {"single_campaign": {"speedup": 2.0}}
        assert engine_gate_failures(passing) == []
        failures = engine_gate_failures(failing)
        assert len(failures) == 1 and "below the 5x target" in failures[0]


class TestRunSuites:
    def test_engine_suite_quick(self):
        payload, failures = run_suites(("engine",), quick=True)
        assert failures == []
        engine = payload["suites"]["engine"]
        assert engine["single_campaign"]["bit_identical"] is True
        assert engine["single_campaign"]["speedup"] > 1.0
        assert engine["fleet"]["campaigns"] == 4
        assert engine["fleet"]["campaigns_per_sec"] > 0

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suites(("nope",))


class TestBenchTelemetry:
    def test_instrumented_rows_carry_lane_attribution(self):
        collector = TelemetryReport()
        results = measure_batched_fleet(
            memories=4, repeats=1, warmup=False, telemetry=True,
            collector=collector,
        )
        for row in results["rows"]:
            attribution = row["lane_attribution"]
            assert attribution["march_time_s"] > 0
            assert set(attribution["lanes"]) == {"replay", "table", "clean"}
        # The collector accumulated all three regimes' spans.
        assert collector.span_stats["bench.regime"][0] == len(BATCHED_REGIMES)
        assert collector.counters.get("lane.replay.ns") > 0

    def test_uninstrumented_rows_have_no_attribution(self):
        results = measure_batched_fleet(memories=4, repeats=1, warmup=False)
        assert all("lane_attribution" not in row for row in results["rows"])

    def test_run_suites_attaches_telemetry_document(self):
        payload, _ = run_suites(("engine",), quick=True, telemetry=True)
        assert "telemetry" in payload
        plain, _ = run_suites(("engine",), quick=True)
        assert "telemetry" not in plain


def synthetic_payload() -> dict:
    return {
        "quick": True,
        "suites": {
            "batched-fleet": {
                "rows": [
                    {
                        "regime": "screening",
                        "speedup": 3.5,
                    },
                    {
                        "regime": "heavy-diagnostic",
                        "speedup": 1.4,
                        "lane_attribution": {
                            "march_time_s": 0.25,
                            "lanes": {
                                "replay": {"time_share": 0.62},
                                "table": {"time_share": 0.2},
                                "clean": {"time_share": 0.18},
                            },
                        },
                    },
                ]
            },
            "engine": {"single_campaign": {"speedup": 9.0}},
        },
    }


class TestTrajectory:
    def test_entry_records_speedups_and_replay_share(self):
        entry = trajectory_entry(synthetic_payload(), "2026-08-08T00:00:00")
        assert entry["timestamp"] == "2026-08-08T00:00:00"
        assert entry["quick"] is True
        assert entry["regimes"]["screening"] == {"speedup": 3.5}
        heavy = entry["regimes"]["heavy-diagnostic"]
        assert heavy["speedup"] == 1.4
        assert heavy["replay_time_share"] == 0.62
        assert heavy["march_time_s"] == 0.25
        assert entry["engine_speedup"] == 9.0

    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "trajectory.json"
        first = append_trajectory(path, {"timestamp": "t0"})
        assert first == [{"timestamp": "t0"}]
        second = append_trajectory(path, {"timestamp": "t1"})
        assert [e["timestamp"] for e in second] == ["t0", "t1"]
        on_disk = json.loads(path.read_text())
        assert on_disk == second

    def test_append_rejects_non_list_file(self, tmp_path):
        path = tmp_path / "trajectory.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="JSON list"):
            append_trajectory(path, {"timestamp": "t0"})

    def test_git_revision_in_a_repo(self, tmp_path):
        # The repo under test is a git repository; outside one, None.
        rev = git_revision()
        assert rev is None or (isinstance(rev, str) and rev)
        assert git_revision(tmp_path) is None

    def test_entry_outside_git_checkout_records_null_rev(
        self, tmp_path, monkeypatch
    ):
        # Run from a non-git directory: the trajectory entry must degrade
        # to git_rev: null instead of failing the bench run.
        monkeypatch.chdir(tmp_path)
        entry = trajectory_entry(synthetic_payload(), "2026-08-08T00:00:00")
        assert entry["git_rev"] is None
        assert entry["regimes"]["screening"] == {"speedup": 3.5}

    def test_entry_survives_a_broken_git_binary(self, monkeypatch):
        # A git that cannot even spawn (PATH damage, sandboxes) degrades
        # the same way.
        monkeypatch.setenv("PATH", "")
        entry = trajectory_entry(synthetic_payload(), "2026-08-08T00:00:00")
        assert entry["git_rev"] is None


class TestMeasureEngineThroughput:
    def test_records_plan_cache_hit_rate(self):
        results = measure_engine_throughput(
            memories=2, fleet_campaigns=2, workers=1
        )
        assert results["config"]["fleet_workers"] == 1
        fleet = results["fleet"]
        assert fleet["plan_cache_hit_rate"] is None or (
            0.0 <= fleet["plan_cache_hit_rate"] <= 1.0
        )
