"""Tests for the ASCII figure helpers."""

import pytest

from repro.analysis.figures import ascii_bars, ascii_plot


class TestAsciiPlot:
    def test_contains_all_points(self):
        text = ascii_plot([0, 1, 2, 3], [0, 1, 2, 3], width=20, height=8)
        assert text.count("*") >= 4

    def test_title_rendered(self):
        text = ascii_plot([0, 1], [0, 1], title="R vs rate")
        assert text.splitlines()[0] == "R vs rate"

    def test_axis_labels(self):
        text = ascii_plot([0.5, 2.5], [10, 90], width=20, height=6)
        assert "0.5" in text and "2.5" in text
        assert "90" in text and "10" in text

    def test_log_scale(self):
        text = ascii_plot([1, 2, 3], [1, 100, 10000], log_y=True)
        assert "1e+04" in text or "10000" in text

    def test_constant_series_ok(self):
        text = ascii_plot([0, 1], [5, 5])
        assert "*" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1], [1, 2])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1], [1])


class TestAsciiBars:
    def test_bar_per_label(self):
        text = ascii_bars(["a", "bb"], [1.0, 2.0])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("a |")

    def test_longest_bar_is_peak(self):
        text = ascii_bars(["x", "y"], [1.0, 4.0], width=8)
        short, long_ = text.splitlines()
        assert long_.count("#") > short.count("#")

    def test_zero_value(self):
        text = ascii_bars(["z"], [0.0])
        assert "0" in text

    def test_unit_suffix(self):
        assert "ms" in ascii_bars(["t"], [3.0], unit="ms")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars([], [])
