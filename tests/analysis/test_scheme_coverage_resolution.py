"""Tests for scheme-level coverage comparison and the diagnosis dictionary."""

import pytest

from repro.analysis.coverage import compare_scheme_coverage
from repro.analysis.resolution import DiagnosisDictionary, Signature
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.march.simulator import FailureRecord
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


@pytest.fixture(scope="module")
def coverage_rows():
    return {row.label: row for row in compare_scheme_coverage(MemoryGeometry(8, 4, "cov"))}


class TestSchemeCoverage:
    def test_proposed_covers_everything(self, coverage_rows):
        for label, row in coverage_rows.items():
            assert row.proposed_detected == row.instances, label

    def test_baseline_misses_retention(self, coverage_rows):
        assert coverage_rows["DRF0 (cannot hold 0)"].baseline_detected == 0
        assert coverage_rows["DRF1 (cannot hold 1)"].baseline_detected == 0

    def test_baseline_misses_weak_cells(self, coverage_rows):
        assert coverage_rows["Weak cell (reliability-only)"].baseline_detected == 0

    def test_baseline_localizes_stuck_at(self, coverage_rows):
        row = coverage_rows["SAF0"]
        assert row.baseline_localized == row.instances

    def test_percentages_render(self, coverage_rows):
        rendered = coverage_rows["SAF0"].as_percentages()
        assert rendered["proposed det"].strip() == "100.0%"


class TestSignature:
    def _failure(self, step, op, address, expected, observed):
        return FailureRecord("m", 0, step, 0, op, address, 0b1111, expected, observed)

    def test_cell_footprint(self):
        failures = [self._failure("M1", "r0", 3, 0b0000, 0b0100)]
        assert Signature.from_failures(failures).footprint == "cell"

    def test_row_footprint(self):
        failures = [self._failure("M1", "r0", 3, 0b0000, 0b0110)]
        assert Signature.from_failures(failures).footprint == "row"

    def test_column_footprint(self):
        failures = [
            self._failure("M1", "r0", 1, 0b0000, 0b0100),
            self._failure("M1", "r0", 5, 0b0000, 0b0100),
        ]
        assert Signature.from_failures(failures).footprint == "column"

    def test_scattered_footprint(self):
        failures = [
            self._failure("M1", "r0", 1, 0b0000, 0b0100),
            self._failure("M2", "r1", 5, 0b1111, 0b1101),
        ]
        assert Signature.from_failures(failures).footprint == "scattered"


class TestDiagnosisDictionary:
    @pytest.fixture(scope="class")
    def dictionary(self):
        return DiagnosisDictionary.build(MemoryGeometry(8, 4, "dict"))

    def test_nonempty(self, dictionary):
        assert dictionary.size > 0

    def test_classifies_stuck_at(self, dictionary):
        memory = SRAM(MemoryGeometry(8, 4, "dict"))
        StuckAtFault(CellRef(2, 1), 1).attach(memory)
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
        candidates = dictionary.classify(report.failures["dict"])
        assert "SAF1" in candidates

    def test_classifies_drf(self, dictionary):
        memory = SRAM(MemoryGeometry(8, 4, "dict"))
        DataRetentionFault(CellRef(2, 1), 1).attach(memory)
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
        candidates = dictionary.classify(report.failures["dict"])
        assert any("DRF1" in c for c in candidates)

    def test_clean_run_empty(self, dictionary):
        assert dictionary.classify([]) == set()

    def test_resolution_histogram(self, dictionary):
        histogram = dictionary.resolution_histogram()
        assert sum(histogram.values()) == dictionary.size
        assert 1 in histogram  # at least some signatures are unambiguous
