"""Tests for the Section-4 evaluation models: timing and area."""

import pytest

from repro.analysis.area import AreaModel, TransistorBudget, wire_comparison
from repro.analysis.timing_model import (
    case_study_comparison,
    compare_timing,
    paper_read_cost_variant,
)
from repro.memory.geometry import MemoryGeometry
from repro.soc.case_study import (
    PAPER_AREA_OVERHEAD,
    PAPER_REDUCTION_NO_DRF,
    PAPER_REDUCTION_WITH_DRF,
)


class TestCaseStudyTiming:
    def test_paper_k(self):
        assert case_study_comparison().iterations == 96

    def test_reduction_at_least_84(self):
        """The paper's headline: R >= 84 without DRFs."""
        row = case_study_comparison()
        assert row.reduction >= PAPER_REDUCTION_NO_DRF

    def test_reduction_with_drf_near_145(self):
        """Paper claims >= 145; literal equations give 143.4 (within 1.2%)."""
        row = case_study_comparison()
        assert row.reduction_with_drf == pytest.approx(
            PAPER_REDUCTION_WITH_DRF, rel=0.02
        )

    def test_read_cost_variant_brackets_paper(self):
        variant = paper_read_cost_variant(512, 100, 10.0, 96)
        assert variant.reduction_with_drf == pytest.approx(144.8, abs=0.1)
        literal = case_study_comparison()
        assert literal.reduction_with_drf <= PAPER_REDUCTION_WITH_DRF <= \
            variant.reduction_with_drf + 1.0

    def test_pretty_rendering(self):
        text = case_study_comparison().pretty()
        assert "T[7,8]" in text and "R (with DRF)" in text

    def test_comparison_consistency(self):
        row = compare_timing(256, 32, 10.0, 10)
        assert row.baseline_drf_ns > row.baseline_ns
        assert row.proposed_drf_ns > row.proposed_ns
        assert row.reduction == row.baseline_ns / row.proposed_ns


class TestAreaModel:
    def test_paper_budget_extra_per_bit(self):
        """Sec. 4.3: proposed - baseline = three 6T cells per bit."""
        assert AreaModel().extra_per_bit_cells() == 3.0

    def test_dff_is_two_cells_latch_is_one(self):
        budget = TransistorBudget.paper()
        assert budget.cells(budget.dff) == 2.0
        assert budget.cells(budget.latch) == 1.0

    def test_benchmark_overhead_brackets_paper(self):
        """Paper says ~1.8%; our budgets bracket it."""
        geometry = MemoryGeometry(512, 100)
        low = AreaModel().overhead_fraction(geometry, "proposed")
        high = AreaModel(TransistorBudget.conservative()).overhead_fraction(
            geometry, "proposed"
        )
        assert low <= PAPER_AREA_OVERHEAD <= high

    def test_overhead_small_for_benchmark(self):
        geometry = MemoryGeometry(512, 100)
        assert AreaModel().overhead_fraction(geometry, "proposed") < 0.03

    def test_proposed_costs_more_than_baseline(self):
        geometry = MemoryGeometry(512, 100)
        model = AreaModel()
        assert model.overhead_fraction(geometry, "proposed") > \
            model.overhead_fraction(geometry, "baseline")

    def test_breakdown_totals(self):
        model = AreaModel()
        breakdown = model.breakdown(MemoryGeometry(512, 100), "proposed")
        assert breakdown.total_transistors == (
            breakdown.interface_transistors
            + breakdown.address_generator_transistors
            + breakdown.glue_transistors
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            AreaModel().breakdown(MemoryGeometry(4, 4), "quantum")


class TestWireComparison:
    def test_plus_one_wire(self):
        """Sec. 4.3: exactly one extra global wire (scan_en)."""
        result = wire_comparison()
        assert result["extra_without_drf"] == 1
        assert result["scan_en_is_the_plus_one"]

    def test_nwrtm_reported_separately(self):
        result = wire_comparison()
        assert "nwrtm" in result["extra_wires"]
        assert result["proposed_with_nwrtm_count"] == result["proposed_count"] + 1
