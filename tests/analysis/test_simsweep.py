"""Simulation-backed sweep matrices: measured R vs the analytic model."""

from __future__ import annotations

import json

import pytest

from repro.analysis.simsweep import (
    FAULT_MIX_PRESETS,
    SimSweepPoint,
    analytic_comparison,
    defect_rate_matrix,
    fault_mix_matrix,
    geometry_matrix,
    run_sim_sweep,
    summarize_point,
)
from repro.engine.aggregate import FleetReport
from repro.engine.fleet import FleetSpec
from repro.faults.defects import DefectType

FAST = dict(campaigns=2, memories=2, master_seed=3)


class TestMatrices:
    def test_defect_rate_rows_track_model(self):
        points = defect_rate_matrix([0.005, 0.01], **FAST)
        rows = run_sim_sweep(points, workers=1)
        assert [row.label for row in rows] == ["0.5000%", "1.0000%"]
        for row in rows:
            assert row.campaigns == 2
            assert row.total_faults > 0
            # The fleet's measured R must land near the closed-form model
            # (the point of the side-by-side emission is seeing the gap).
            assert row.measured_r_mean == pytest.approx(
                row.analytic_r_drf, rel=0.25
            )
            assert row.measured_k_mean == pytest.approx(row.analytic_k, rel=0.25)
            assert 0.5 < row.model_gap < 2.0
        # R grows with the defect rate, measured and modeled alike.
        assert rows[1].measured_r_mean > rows[0].measured_r_mean
        assert rows[1].analytic_r > rows[0].analytic_r

    def test_geometry_matrix_uniform_fleets(self):
        points = geometry_matrix([(64, 16), (32, 8)], defect_rate=0.02, **FAST)
        assert [point.spec.geometry for point in points] == [(64, 16), (32, 8)]
        rows = run_sim_sweep(points, workers=1)
        assert [row.label for row in rows] == ["64x16", "32x8"]
        assert all(row.model_gap == pytest.approx(1.0, abs=0.35) for row in rows)

    def test_fault_mix_matrix_shifts_k(self):
        mixes = {
            "logical-only": FAULT_MIX_PRESETS["logical-only"],
            "retention-heavy": FAULT_MIX_PRESETS["retention-heavy"],
        }
        points = fault_mix_matrix(mixes, defect_rate=0.02, **FAST)
        rows = {row.label: row for row in run_sim_sweep(points, workers=1)}
        # All faults localizable -> more M1 work than a retention-heavy mix
        # (DRFs are localized two-per-iteration in parallel with the rest).
        assert (
            rows["logical-only"].measured_k_mean
            > rows["retention-heavy"].measured_k_mean
        )
        assert rows["logical-only"].analytic_k > rows["retention-heavy"].analytic_k

    def test_rows_are_json_serializable(self):
        points = defect_rate_matrix([0.01], **FAST)
        rows = run_sim_sweep(points, workers=1)
        payload = json.dumps([row.to_json_dict() for row in rows])
        decoded = json.loads(payload)
        assert decoded[0]["matrix"] == "X1-defect-rate"
        assert decoded[0]["analytic_k"] >= 1

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            defect_rate_matrix([])
        with pytest.raises(ValueError):
            geometry_matrix([])
        with pytest.raises(ValueError):
            fault_mix_matrix({})


class TestAnalyticModel:
    def test_matches_sweeps_arithmetic_for_case_study(self):
        spec = FleetSpec(
            soc="case-study", memories=1, defect_rate=0.01, campaigns=1
        )
        iterations, timing = analytic_comparison(spec)
        assert iterations == 96  # the paper's k for 512x100 at 1 %
        assert timing.reduction == pytest.approx(84.15, abs=0.01)

    def test_retention_heavy_mix_binds_on_drf_share(self):
        logical = FleetSpec(
            soc="case-study", memories=1, defect_rate=0.01, campaigns=1,
            defect_weights=(1.0, 1.0, 1.0, 0.0),
        )
        retention = FleetSpec(
            soc="case-study", memories=1, defect_rate=0.01, campaigns=1,
            defect_weights=(0.0, 0.0, 1.0, 3.0),
        )
        k_logical, _ = analytic_comparison(logical)
        k_retention, _ = analytic_comparison(retention)
        assert k_logical > 96  # share 1.0 > the paper's 0.75
        assert k_retention == 96  # binding share back to max(0.25, 0.75)

    def test_summarize_point_without_baseline(self):
        spec = FleetSpec(campaigns=1, include_baseline=False)
        point = SimSweepPoint(matrix="X1-defect-rate", label="x", spec=spec)
        row = summarize_point(point, FleetReport())
        assert row.measured_r_mean is None
        assert row.model_gap is None
        assert row.analytic_k >= 1


class TestFleetSpecExtensions:
    def test_geometry_override_builds_uniform_soc(self):
        spec = FleetSpec(campaigns=1, memories=3, geometry=(64, 16))
        soc = spec.build_soc()
        assert len(soc.geometries) == 3
        assert all((g.words, g.bits) == (64, 16) for g in soc.geometries)

    def test_defect_weights_build_profile(self):
        spec = FleetSpec(campaigns=1, defect_weights=(2.0, 1.0, 1.0, 0.0))
        profile = spec.build_profile()
        assert profile.weights[DefectType.NODE_SHORT] == 2.0
        assert profile.weights[DefectType.PULLUP_OPEN] == 0.0
        assert FleetSpec(campaigns=1).build_profile() is None

    def test_bad_defect_weights_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec(campaigns=1, defect_weights=(1.0, 1.0))

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec(campaigns=1, geometry=(64,))
