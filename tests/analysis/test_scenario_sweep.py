"""Scenario sweep matrices (S1 radius / S2 upset probability)."""

from __future__ import annotations

import pytest

from repro.analysis.scenario_sweep import (
    ScenarioSweepPoint,
    radius_matrix,
    run_scenario_sweep,
    summarize_scenario_point,
    upset_matrix,
)
from repro.scenarios import ScenarioSpec, run_scenario_fleet

BASE = ScenarioSpec(
    shapes=((12, 6, "sw_a"), (10, 5, "sw_b")),
    campaigns=1,
    master_seed=3,
    base_defect_rate=0.02,
    cluster_count=1,
    cluster_radius=20.0,
    cluster_peak_rate=0.05,
    intermittent_rate=0.02,
    upset_probability=0.5,
    spares_per_memory=16,
    backend="auto",
)


class TestMatrices:
    def test_radius_matrix_points(self):
        points = radius_matrix([5.0, 40.0], base=BASE)
        assert [p.label for p in points] == ["r=5", "r=40"]
        assert all(p.matrix == "S1-cluster-radius" for p in points)
        assert points[0].spec.cluster_radius == 5.0
        assert points[1].spec.cluster_radius == 40.0
        # Everything else inherits the base spec.
        assert points[0].spec.master_seed == BASE.master_seed

    def test_upset_matrix_points(self):
        points = upset_matrix([0.1, 0.9], base=BASE)
        assert [p.label for p in points] == ["p=0.1", "p=0.9"]
        assert points[1].spec.upset_probability == 0.9

    def test_matrices_from_kwargs(self):
        points = radius_matrix([10.0], campaigns=2, soc="buffer-cluster")
        assert points[0].spec.campaigns == 2

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            radius_matrix([])
        with pytest.raises(ValueError):
            upset_matrix([])


class TestSweepExecution:
    def test_rows_match_direct_fleet_runs(self):
        points = radius_matrix([8.0, 45.0], base=BASE)
        done: list[tuple[int, int]] = []
        rows = run_scenario_sweep(
            points, workers=1, progress=lambda d, t: done.append((d, t))
        )
        assert done == [(1, 2), (2, 2)]
        for point, row in zip(points, rows):
            direct = summarize_scenario_point(
                point, run_scenario_fleet(point.spec, workers=1)
            )
            assert row.label == direct.label
            assert row.total_faults == direct.total_faults
            assert row.measured_r_mean == direct.measured_r_mean
            assert row.escape_rate_mean == direct.escape_rate_mean
            assert row.retest_convergence == direct.retest_convergence

    def test_wider_radius_assigns_more_defects(self):
        rows = run_scenario_sweep(radius_matrix([2.0, 80.0], base=BASE), workers=1)
        assert rows[1].assigned_rate_mean > rows[0].assigned_rate_mean
        assert rows[1].total_faults >= rows[0].total_faults

    def test_row_renderings(self):
        (row,) = run_scenario_sweep(radius_matrix([10.0], base=BASE), workers=1)
        table = row.to_table_row()
        assert table["point"] == "r=10"
        assert "escape" in table and "converged" in table
        payload = row.to_json_dict()
        assert payload["matrix"] == "S1-cluster-radius"
        assert "intermittent_detection_rate" in payload

    def test_point_record_shape(self):
        point = ScenarioSweepPoint("S1-cluster-radius", "r=1", BASE)
        assert point.to_dict()["label"] == "r=1"
