"""Tests for the repair-yield model."""

import pytest

from repro.analysis.yield_model import yield_after_repair, yield_curve
from repro.core.redundancy import RedundancyBudget
from repro.memory.geometry import MemoryGeometry

GEOMETRY = MemoryGeometry(64, 16, "yield")


class TestYieldPoint:
    def test_zero_defects_full_yield(self):
        point = yield_after_repair(
            GEOMETRY, 0.0, RedundancyBudget(2, 2), range(8)
        )
        assert point.repair_yield == 1.0
        assert point.shippable_yield == 1.0

    def test_no_spares_low_rate(self):
        point = yield_after_repair(
            GEOMETRY, 0.01, RedundancyBudget(0, 0), range(8)
        )
        assert point.repair_yield == 0.0  # every sample has >= 1 fault

    def test_more_spares_never_hurt(self):
        small = yield_after_repair(GEOMETRY, 0.01, RedundancyBudget(1, 1), range(16))
        large = yield_after_repair(GEOMETRY, 0.01, RedundancyBudget(4, 4), range(16))
        assert large.repair_yield >= small.repair_yield

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            yield_after_repair(GEOMETRY, 0.01, RedundancyBudget(1, 1), range(2), "x")


class TestSchemeComparison:
    def test_baseline_ships_latent_drfs(self):
        """The economic reading of the coverage argument: the baseline's
        allocation looks feasible but misses DRF cells, so its shippable
        yield trails the proposed scheme's."""
        budget = RedundancyBudget(3, 3)
        seeds = range(24)
        proposed = yield_after_repair(GEOMETRY, 0.01, budget, seeds, "proposed")
        baseline = yield_after_repair(GEOMETRY, 0.01, budget, seeds, "baseline")
        assert proposed.shippable_yield >= baseline.shippable_yield
        # With ~5 faults/sample and ~25% DRFs, several baseline samples
        # must contain an unseen retention fault.
        assert baseline.shippable_yield < 1.0 or baseline.repair_yield < 1.0

    def test_proposed_shippable_equals_repairable(self):
        """Full localization: if it is repairable it is shippable."""
        point = yield_after_repair(
            GEOMETRY, 0.01, RedundancyBudget(3, 3), range(24), "proposed"
        )
        assert point.shippable_yield == point.repair_yield


class TestYieldCurve:
    def test_monotone_decreasing_in_rate(self):
        curve = yield_curve(
            GEOMETRY, [0.001, 0.01, 0.05], RedundancyBudget(2, 2), range(16)
        )
        yields = [point.repair_yield for point in curve]
        assert yields == sorted(yields, reverse=True)
