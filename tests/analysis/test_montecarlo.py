"""Tests for the Monte-Carlo distribution experiments."""

import pytest

from repro.analysis.montecarlo import (
    Distribution,
    emergent_k_distribution,
    reduction_distribution,
)
from repro.memory.geometry import MemoryGeometry


class TestDistribution:
    def test_of_basic(self):
        dist = Distribution.of([1.0, 2.0, 3.0])
        assert dist.samples == 3
        assert dist.mean == 2.0
        assert dist.minimum == 1.0 and dist.maximum == 3.0

    def test_single_sample_std_zero(self):
        assert Distribution.of([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Distribution.of([])


class TestEmergentK:
    @pytest.fixture(scope="class")
    def k_dist(self):
        # Small geometry keeps the Monte-Carlo fast; the arithmetic scales.
        return emergent_k_distribution(
            range(24), MemoryGeometry(128, 32, "mc"), defect_rate=0.01
        )

    def test_mean_tracks_paper_arithmetic(self, k_dist):
        """E[k] ~ faults * 0.75 / 2 = 20.48 * 0.75 / 2 ~ 7.7 for 128x32@1%."""
        expected = round(128 * 32 * 0.01 / 2) * 0.75 / 2
        assert k_dist.mean == pytest.approx(expected, rel=0.2)

    def test_spread_is_narrow(self, k_dist):
        assert k_dist.std < k_dist.mean * 0.3

    def test_bounds_sane(self, k_dist):
        assert 0 < k_dist.minimum <= k_dist.mean <= k_dist.maximum


class TestReductionDistribution:
    def test_reduction_concentrates_above_one(self):
        dist = reduction_distribution(
            range(12), MemoryGeometry(128, 32, "mc"), defect_rate=0.01
        )
        assert dist.minimum > 1.0
        assert dist.samples == 12

    def test_case_study_scale(self):
        """A few seeds at full case-study scale straddle the paper's 84."""
        dist = reduction_distribution(range(6), defect_rate=0.01)
        assert dist.mean == pytest.approx(84.0, rel=0.1)
