"""Unit tests for the address decoder and its AF mutators."""

import pytest

from repro.memory.decoder import AddressDecoder


class TestIdentityDecoder:
    def test_default_targets(self):
        decoder = AddressDecoder(8)
        assert decoder.targets(3) == (3,)

    def test_not_faulty_by_default(self):
        assert not AddressDecoder(8).is_faulty

    def test_no_unreachable_words(self):
        assert AddressDecoder(8).unreachable_words() == set()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AddressDecoder(8).targets(8)


class TestTypeA:
    def test_break_address(self):
        decoder = AddressDecoder(8)
        decoder.break_address(5)
        assert decoder.targets(5) == ()
        assert decoder.is_faulty

    def test_unreachable_after_break(self):
        decoder = AddressDecoder(8)
        decoder.break_address(5)
        assert decoder.unreachable_words() == {5}


class TestTypeBD:
    def test_remap(self):
        decoder = AddressDecoder(8)
        decoder.remap_address(2, 6)
        assert decoder.targets(2) == (6,)

    def test_remap_makes_word_unreachable(self):
        decoder = AddressDecoder(8)
        decoder.remap_address(2, 6)
        assert decoder.unreachable_words() == {2}

    def test_self_remap_rejected(self):
        with pytest.raises(ValueError):
            AddressDecoder(8).remap_address(2, 2)


class TestTypeCD:
    def test_extra_target(self):
        decoder = AddressDecoder(8)
        decoder.add_extra_target(1, 4)
        assert decoder.targets(1) == (1, 4)

    def test_extra_target_idempotent(self):
        decoder = AddressDecoder(8)
        decoder.add_extra_target(1, 4)
        decoder.add_extra_target(1, 4)
        assert decoder.targets(1) == (1, 4)

    def test_self_extra_rejected(self):
        with pytest.raises(ValueError):
            AddressDecoder(8).add_extra_target(1, 1)


class TestReset:
    def test_reset_restores_identity(self):
        decoder = AddressDecoder(8)
        decoder.break_address(1)
        decoder.remap_address(2, 3)
        decoder.reset()
        assert not decoder.is_faulty
        assert decoder.targets(1) == (1,)
