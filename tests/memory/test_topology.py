"""Tests for the physical array topology (column multiplexing)."""

import pytest

from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.topology import ArrayTopology, PhysicalLocation


@pytest.fixture
def topology():
    return ArrayTopology(MemoryGeometry(16, 4, "t"), mux_factor=4)


class TestMapping:
    def test_shape(self, topology):
        assert topology.rows == 4
        assert topology.cols == 16

    def test_location_of_word0(self, topology):
        assert topology.location(CellRef(0, 0)) == PhysicalLocation(0, 0)
        assert topology.location(CellRef(0, 1)) == PhysicalLocation(0, 4)

    def test_location_encodes_select(self, topology):
        assert topology.location(CellRef(1, 0)) == PhysicalLocation(0, 1)
        assert topology.location(CellRef(5, 2)) == PhysicalLocation(1, 9)

    def test_roundtrip_every_cell(self, topology):
        for cell in topology.geometry.all_cells():
            assert topology.cell_at(topology.location(cell)) == cell

    def test_locations_are_unique(self, topology):
        locations = {
            topology.location(cell) for cell in topology.geometry.all_cells()
        }
        assert len(locations) == topology.geometry.cells

    def test_indivisible_words_rejected(self):
        with pytest.raises(ValueError):
            ArrayTopology(MemoryGeometry(10, 4), mux_factor=4)


class TestAdjacencyClaims:
    """The physical facts behind the defect-sampling policy."""

    def test_same_word_adjacent_bits_are_mux_apart(self, topology):
        distance = topology.logical_bit_distance(CellRef(3, 1), CellRef(3, 2))
        assert distance == topology.mux_factor

    def test_consecutive_words_same_bit_are_column_neighbors(self, topology):
        distance = topology.logical_bit_distance(CellRef(4, 2), CellRef(5, 2))
        assert distance == 1

    def test_physical_neighbors_never_same_word_when_muxed(self, topology):
        for cell in topology.geometry.all_cells():
            for neighbor in topology.physical_neighbors(cell):
                assert neighbor.word != cell.word or neighbor.bit != cell.bit
                if neighbor.bit == cell.bit and neighbor.word == cell.word:
                    pytest.fail("cell is its own neighbor")

    def test_bridge_pairs_are_inter_word_dominated(self, topology):
        pairs = list(topology.bridge_pairs())
        inter_word = sum(1 for a, b in pairs if a.word != b.word)
        assert inter_word / len(pairs) > 0.7

    def test_vertical_neighbors_skip_mux_words(self, topology):
        home = CellRef(1, 2)  # row 0, select 1
        below = [
            n for n in topology.physical_neighbors(home)
            if topology.location(n).row == 1
        ]
        assert below == [CellRef(5, 2)]  # word 1 + mux_factor


class TestNoMux:
    def test_mux_one_keeps_logical_adjacency(self):
        topology = ArrayTopology(MemoryGeometry(8, 4), mux_factor=1)
        assert topology.logical_bit_distance(CellRef(0, 0), CellRef(0, 1)) == 1
        assert topology.rows == 8 and topology.cols == 4
