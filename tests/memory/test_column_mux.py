"""Unit tests for the column mux, including path-specific faults."""

import pytest

from repro.memory.column_mux import ColumnMux


class TestIdentity:
    def test_write_passthrough(self):
        mux = ColumnMux(4)
        assert mux.write_columns(0b0000, 0b1010) == 0b1010

    def test_read_passthrough(self):
        mux = ColumnMux(4)
        assert mux.read_columns(0b1010) == 0b1010

    def test_not_faulty(self):
        assert not ColumnMux(4).is_faulty


class TestBothPathSwapTransparency:
    """A consistent swap on write AND read paths cancels out."""

    def test_roundtrip_is_identity(self):
        mux = ColumnMux(4)
        mux.swap_bits(0, 1, path="both")
        for value in range(16):
            stored = mux.write_columns(0, value)
            assert mux.read_columns(stored) == value

    def test_storage_is_swapped(self):
        mux = ColumnMux(4)
        mux.swap_bits(0, 1, path="both")
        assert mux.write_columns(0, 0b0001) == 0b0010


class TestWritePathSwap:
    """A write-only select swap is observable under differing columns."""

    def test_observable_when_columns_differ(self):
        mux = ColumnMux(4)
        mux.swap_bits(0, 1, path="write")
        stored = mux.write_columns(0, 0b0001)
        assert mux.read_columns(stored) == 0b0010

    def test_invisible_under_solid(self):
        mux = ColumnMux(4)
        mux.swap_bits(0, 1, path="write")
        for solid in (0b0000, 0b1111):
            stored = mux.write_columns(0, solid)
            assert mux.read_columns(stored) == solid


class TestOpenBit:
    def test_write_lost_old_value_kept(self):
        mux = ColumnMux(4)
        mux.break_bit(2, path="write")
        assert mux.write_columns(0b0100, 0b0000) == 0b0100

    def test_read_floats_low(self):
        mux = ColumnMux(4)
        mux.break_bit(2, path="read")
        assert mux.read_columns(0b0100) == 0b0000


class TestBridge:
    def test_extra_column_driven_on_write(self):
        mux = ColumnMux(4)
        mux.add_extra_column(0, 1, path="write")
        assert mux.write_columns(0, 0b0001) == 0b0011

    def test_wired_or_read(self):
        mux = ColumnMux(4)
        mux.add_extra_column(0, 1, path="read")
        assert mux.read_columns(0b0010) == 0b0011

    def test_wired_and_policy(self):
        mux = ColumnMux(4, wired_or=False)
        mux.add_extra_column(0, 1, path="read")
        assert mux.read_columns(0b0010) == 0b0010

    def test_conflicting_writes_resolve_by_policy(self):
        mux = ColumnMux(4)
        mux.remap_bit(0, 1, path="write")  # bits 0 and 1 both drive column 1
        stored = mux.write_columns(0, 0b0001)  # bit0=1, bit1=0 drive column 1
        assert (stored >> 1) & 1 == 1  # wired-OR takes the high driver


class TestValidation:
    def test_bad_path_rejected(self):
        with pytest.raises(ValueError):
            ColumnMux(4).break_bit(0, path="sideways")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ColumnMux(4).remap_bit(0, 4)

    def test_reset(self):
        mux = ColumnMux(4)
        mux.swap_bits(0, 1)
        mux.reset()
        assert not mux.is_faulty
