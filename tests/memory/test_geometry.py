"""Unit tests for repro.memory.geometry."""

import pytest

from repro.memory.geometry import CellRef, MemoryGeometry


class TestCellRef:
    def test_ordering(self):
        assert CellRef(0, 1) < CellRef(1, 0)

    def test_str(self):
        assert str(CellRef(3, 7)) == "[w3.b7]"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CellRef(-1, 0)


class TestMemoryGeometry:
    def test_cells(self):
        assert MemoryGeometry(512, 100).cells == 51_200

    def test_address_bits(self):
        assert MemoryGeometry(512, 100).address_bits == 9
        assert MemoryGeometry(1, 4).address_bits == 1
        assert MemoryGeometry(5, 4).address_bits == 3

    def test_cell_index_roundtrip(self):
        geometry = MemoryGeometry(7, 5)
        for index in range(geometry.cells):
            assert geometry.cell_index(geometry.cell_at(index)) == index

    def test_cell_index_word_major(self):
        geometry = MemoryGeometry(4, 3)
        assert geometry.cell_index(CellRef(1, 0)) == 3

    def test_check_address_bounds(self):
        geometry = MemoryGeometry(4, 3)
        geometry.check_address(3)
        with pytest.raises(ValueError):
            geometry.check_address(4)

    def test_check_cell_bounds(self):
        geometry = MemoryGeometry(4, 3)
        with pytest.raises(ValueError):
            geometry.check_cell(CellRef(0, 3))

    def test_all_cells_count(self):
        geometry = MemoryGeometry(3, 2)
        assert len(list(geometry.all_cells())) == 6

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            MemoryGeometry(0, 4)
        with pytest.raises(ValueError):
            MemoryGeometry(4, 0)


class TestNeighbors:
    def test_interior_cell_has_four(self):
        geometry = MemoryGeometry(4, 4)
        assert len(geometry.neighbors(CellRef(1, 1))) == 4

    def test_corner_cell_has_two(self):
        geometry = MemoryGeometry(4, 4)
        assert len(geometry.neighbors(CellRef(0, 0))) == 2

    def test_neighbors_are_adjacent(self):
        geometry = MemoryGeometry(5, 5)
        cell = CellRef(2, 2)
        for neighbor in geometry.neighbors(cell):
            distance = abs(neighbor.word - cell.word) + abs(neighbor.bit - cell.bit)
            assert distance == 1

    def test_symmetric(self):
        geometry = MemoryGeometry(4, 4)
        for cell in geometry.all_cells():
            for neighbor in geometry.neighbors(cell):
                assert cell in geometry.neighbors(neighbor)
