"""Unit tests for spares, the memory bank and the time base."""

import pytest

from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.spare import SpareBank
from repro.memory.sram import SRAM
from repro.memory.timebase import TimeBase


class TestSpareBank:
    def test_allocation(self):
        bank = SpareBank(2, 8)
        assert bank.allocate(3)
        assert bank.is_remapped(3)
        assert bank.available == 1

    def test_reallocation_is_noop(self):
        bank = SpareBank(2, 8)
        bank.allocate(3)
        assert bank.allocate(3)
        assert bank.used == 1

    def test_exhaustion(self):
        bank = SpareBank(1, 8)
        assert bank.allocate(0)
        assert not bank.allocate(1)

    def test_spare_storage(self):
        bank = SpareBank(1, 8)
        bank.allocate(5)
        bank.write(5, 0xAB)
        assert bank.read(5) == 0xAB

    def test_unmapped_access_rejected(self):
        bank = SpareBank(1, 8)
        with pytest.raises(ValueError):
            bank.read(0)

    def test_reset(self):
        bank = SpareBank(1, 8)
        bank.allocate(0)
        bank.reset()
        assert bank.available == 1
        assert not bank.is_remapped(0)

    def test_release_returns_slot(self):
        bank = SpareBank(1, 8)
        bank.allocate(4)
        bank.write(4, 0x55)
        assert bank.release(4)
        assert not bank.is_remapped(4)
        assert bank.available == 1
        assert bank.allocate(9)
        assert bank.read(9) == 0  # released storage was cleared
        assert not bank.release(4)  # double release is a no-op failure

    def test_slots_stay_unique_through_release_cycles(self):
        """Allocating after a release must never hand two live addresses
        the same backing slot (the bug a used-counter allocator has)."""
        bank = SpareBank(3, 8)
        for address in (10, 11, 12):
            assert bank.allocate(address)
        bank.release(10)
        assert bank.allocate(13)
        bank.write(11, 0x11)
        bank.write(12, 0x22)
        bank.write(13, 0x33)
        assert (bank.read(11), bank.read(12), bank.read(13)) == (0x11, 0x22, 0x33)
        slots = {bank._remap[a] for a in (11, 12, 13)}
        assert len(slots) == 3
        assert bank.available == 0 and not bank.allocate(14)


class TestMemoryBank:
    def test_sizing_queries(self, hetero_bank):
        assert hetero_bank.max_words == 16
        assert hetero_bank.max_bits == 8

    def test_total_cells(self, hetero_bank):
        assert hetero_bank.total_cells == 16 * 8 + 8 * 5 + 5 * 3

    def test_by_name(self, hetero_bank):
        assert hetero_bank.by_name("narrow").bits == 5
        with pytest.raises(KeyError):
            hetero_bank.by_name("absent")

    def test_heterogeneity(self, hetero_bank):
        assert not hetero_bank.is_homogeneous()
        homogeneous = MemoryBank(
            [SRAM(MemoryGeometry(4, 4, "a")), SRAM(MemoryGeometry(4, 4, "b"))]
        )
        assert homogeneous.is_homogeneous()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MemoryBank(
                [SRAM(MemoryGeometry(4, 4, "x")), SRAM(MemoryGeometry(8, 4, "x"))]
            )

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            MemoryBank([])

    def test_iteration_order_preserved(self, hetero_bank):
        assert [m.name for m in hetero_bank] == ["wide", "narrow", "tiny"]


class TestTimeBase:
    def test_tick(self):
        tb = TimeBase(10.0)
        tb.tick(3)
        assert tb.cycles == 3
        assert tb.now_ns == 30.0

    def test_pause_no_cycles(self):
        tb = TimeBase(10.0)
        tb.pause(500.0)
        assert tb.cycles == 0
        assert tb.now_ns == 500.0

    def test_reset(self):
        tb = TimeBase(10.0)
        tb.tick(5)
        tb.reset()
        assert tb.cycles == 0 and tb.now_ns == 0.0

    def test_negative_rejected(self):
        tb = TimeBase(10.0)
        with pytest.raises(ValueError):
            tb.tick(-1)
        with pytest.raises(ValueError):
            tb.pause(-1.0)
