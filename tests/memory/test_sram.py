"""Unit tests for repro.memory.sram: the behavioural SRAM fast/slow paths."""

import pytest

from repro.faults.coupling import InversionCouplingFault
from repro.faults.stuck_at import StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.ports import AccessKind
from repro.memory.sram import SRAM


class TestFaultFreeAccess:
    def test_initial_state_zero(self, small_memory):
        for address in range(small_memory.words):
            assert small_memory.read(address) == 0

    def test_write_read_roundtrip(self, small_memory):
        small_memory.write(3, 0b1010)
        assert small_memory.read(3) == 0b1010

    def test_writes_are_word_isolated(self, small_memory):
        small_memory.write(1, 0b1111)
        assert small_memory.read(0) == 0
        assert small_memory.read(2) == 0

    def test_nwrc_write_equals_write_on_good_cells(self, small_memory):
        small_memory.nwrc_write(5, 0b0110)
        assert small_memory.read(5) == 0b0110

    def test_fill(self, small_memory):
        small_memory.fill(0b1001)
        assert all(small_memory.read(a) == 0b1001 for a in range(16))

    def test_out_of_range_address_rejected(self, small_memory):
        with pytest.raises(ValueError):
            small_memory.read(16)
        with pytest.raises(ValueError):
            small_memory.write(16, 0)

    def test_too_wide_value_rejected(self, small_memory):
        with pytest.raises(ValueError):
            small_memory.write(0, 0b10000)


class TestTimebase:
    def test_each_access_ticks_once(self, small_memory):
        small_memory.write(0, 1)
        small_memory.read(0)
        small_memory.idle()
        assert small_memory.timebase.cycles == 3

    def test_pause_advances_time_not_cycles(self, small_memory):
        small_memory.pause(1_000_000.0)
        assert small_memory.now_ns == 1_000_000.0
        assert small_memory.timebase.cycles == 0

    def test_period_scales_time(self):
        memory = SRAM(MemoryGeometry(4, 4), period_ns=5.0)
        memory.read(0)
        assert memory.now_ns == 5.0


class TestRawCellAccess:
    def test_force_and_read_stored_bit(self, small_memory):
        small_memory.force_stored_bit(2, 3, 1)
        assert small_memory.stored_bit(2, 3) == 1
        assert small_memory.read(2) == 0b1000

    def test_force_clear(self, small_memory):
        small_memory.write(2, 0b1111)
        small_memory.force_stored_bit(2, 0, 0)
        assert small_memory.read(2) == 0b1110

    def test_force_bypasses_fault_hooks(self, small_memory):
        StuckAtFault(CellRef(2, 0), 0).attach(small_memory)
        small_memory.force_stored_bit(2, 0, 1)
        assert small_memory.stored_bit(2, 0) == 1


class TestFaultAttachment:
    def test_faulty_word_slow_path_only_affects_victim(self, small_memory):
        StuckAtFault(CellRef(4, 1), 1).attach(small_memory)
        small_memory.write(4, 0b0000)
        assert small_memory.read(4) == 0b0010

    def test_other_words_unaffected(self, small_memory):
        StuckAtFault(CellRef(4, 1), 1).attach(small_memory)
        small_memory.write(5, 0)
        assert small_memory.read(5) == 0

    def test_faulty_cells_listing(self, small_memory):
        fault = StuckAtFault(CellRef(4, 1), 1)
        fault.attach(small_memory)
        assert small_memory.faulty_cells() == {CellRef(4, 1)}
        assert list(small_memory.words_with_faults()) == [4]

    def test_remove_cell_fault_restores_behaviour(self, small_memory):
        fault = StuckAtFault(CellRef(4, 1), 1)
        fault.attach(small_memory)
        small_memory.remove_cell_fault(fault)
        small_memory.write(4, 0)
        assert small_memory.read(4) == 0
        assert small_memory.faulty_cells() == set()

    def test_remove_unknown_fault_is_noop(self, small_memory):
        small_memory.remove_cell_fault(StuckAtFault(CellRef(0, 0), 1))

    def test_remove_coupling_fault_clears_aggressor_watch(self, small_memory):
        fault = InversionCouplingFault(CellRef(1, 0), CellRef(2, 0))
        fault.attach(small_memory)
        small_memory.remove_cell_fault(fault)
        small_memory.write(1, 1)  # aggressor rises; victim must not flip
        assert small_memory.stored_bit(2, 0) == 0

    def test_clear_faults(self, small_memory):
        StuckAtFault(CellRef(4, 1), 1).attach(small_memory)
        small_memory.decoder.break_address(2)
        small_memory.clear_faults()
        assert not small_memory.decoder.is_faulty
        small_memory.write(4, 0)
        assert small_memory.read(4) == 0


class TestDecoderIntegration:
    def test_open_address_reads_floating_bus(self, small_memory):
        small_memory.fill(0b1111)
        small_memory.decoder.break_address(3)
        assert small_memory.read(3) == 0

    def test_open_address_drops_writes(self, small_memory):
        small_memory.decoder.break_address(3)
        small_memory.write(3, 0b1111)
        assert small_memory.stored_bit(3, 0) == 0

    def test_multi_access_writes_both_words(self, small_memory):
        small_memory.decoder.add_extra_target(2, 7)
        small_memory.write(2, 0b1111)
        assert small_memory.stored_bit(7, 0) == 1

    def test_multi_access_reads_wired_or(self, small_memory):
        small_memory.decoder.add_extra_target(2, 7)
        small_memory.force_stored_bit(7, 3, 1)
        assert small_memory.read(2) == 0b1000


class TestTrace:
    def test_trace_records_accesses(self):
        memory = SRAM(MemoryGeometry(4, 4), trace=True)
        memory.write(1, 0b0101)
        memory.read(1)
        memory.nwrc_write(1, 0)
        memory.idle()
        kinds = [record.kind for record in memory.accesses]
        assert kinds == [
            AccessKind.WRITE,
            AccessKind.READ,
            AccessKind.NWRC_WRITE,
            AccessKind.IDLE,
        ]

    def test_no_idle_mode_traces_noop_read(self):
        memory = SRAM(MemoryGeometry(4, 4), has_idle_mode=False, trace=True)
        memory.idle()
        assert memory.accesses[0].kind is AccessKind.NOOP_READ

    def test_trace_disabled_by_default(self, small_memory):
        small_memory.read(0)
        assert small_memory.accesses == []
