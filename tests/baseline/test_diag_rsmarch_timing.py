"""Unit tests for the DiagRSMarch reconstruction and Eq. (1) timing."""

import pytest

from repro.baseline.diag_rsmarch import (
    AUX_SWEEPS,
    DIAG_KERNEL_SWEEPS,
    DiagRSMarch,
    min_iterations,
)
from repro.baseline.timing import (
    BaselineTimingBreakdown,
    baseline_diagnosis_time_ns,
    baseline_drf_extra_ns,
)
from repro.serial.shift_register import ShiftDirection


class TestSweepCounts:
    def test_constants(self):
        assert AUX_SWEEPS == 9
        assert DIAG_KERNEL_SWEEPS == 17

    def test_kernel_uses_both_directions(self):
        directions = {s.direction for s in DiagRSMarch.KERNEL}
        assert directions == {ShiftDirection.LEFT, ShiftDirection.RIGHT}

    def test_kernel_uses_checkerboard(self):
        kinds = {s.pattern_kind for s in DiagRSMarch.KERNEL}
        assert "checker" in kinds and "checker_inv" in kinds

    def test_aux_is_right_shift_operational(self):
        """The base RSMarch is right-shift only (Sec. 4.2)."""
        assert all(s.direction is ShiftDirection.RIGHT for s in DiagRSMarch.AUX)

    def test_sweep_patterns_concrete(self):
        sweep = DiagRSMarch.KERNEL[10]
        assert sweep.pattern(4) in (0b1010, 0b0101)

    def test_unknown_pattern_kind_rejected(self):
        from repro.baseline.diag_rsmarch import SerialSweep

        sweep = SerialSweep(ShiftDirection.RIGHT, "bogus")
        with pytest.raises(ValueError):
            sweep.pattern(4)


class TestCycleArithmetic:
    def test_total_cycles_is_eq1(self):
        march = DiagRSMarch()
        assert march.total_cycles(512, 100, 96) == (17 * 96 + 9) * 512 * 100

    def test_per_iteration(self):
        march = DiagRSMarch()
        assert march.cycles_per_iteration(10, 4) == 17 * 40
        assert march.aux_cycles(10, 4) == 9 * 40


class TestMinIterations:
    def test_case_study(self):
        assert min_iterations(256) == 96

    def test_zero_faults(self):
        assert min_iterations(0) == 0

    def test_rounding_up(self):
        assert min_iterations(3, kernel_share=1.0) == 2

    def test_full_share(self):
        assert min_iterations(10, kernel_share=1.0) == 5

    def test_bad_share_rejected(self):
        with pytest.raises(ValueError):
            min_iterations(10, kernel_share=1.5)


class TestEq1:
    def test_case_study_value(self):
        assert baseline_diagnosis_time_ns(512, 100, 10.0, 96) == 840_192_000.0

    def test_scales_linearly_in_k(self):
        t1 = baseline_diagnosis_time_ns(512, 100, 10.0, 10)
        t2 = baseline_diagnosis_time_ns(512, 100, 10.0, 20)
        aux = 9 * 512 * 100 * 10.0
        assert (t2 - aux) == pytest.approx(2 * (t1 - aux))

    def test_drf_extra(self):
        extra = baseline_drf_extra_ns(512, 100, 10.0, 96)
        assert extra == 8 * 96 * 512 * 100 * 10.0 + 200e6

    def test_breakdown_totals(self):
        breakdown = BaselineTimingBreakdown(512, 100, 10.0, 96, include_drf=True)
        assert breakdown.total_ns == breakdown.base_ns + breakdown.drf_extra_ns
        no_drf = BaselineTimingBreakdown(512, 100, 10.0, 96, include_drf=False)
        assert no_drf.drf_extra_ns == 0.0
