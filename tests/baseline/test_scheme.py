"""Tests for the Huang-Jone baseline scheme: iterate-repair diagnosis."""

import pytest

from repro.baseline.scheme import HuangJoneScheme
from repro.faults.injector import FaultInjector
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.faults.weak_cell import WeakCellDefect
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


def _single_memory_setup(faults, geometry=None):
    geometry = geometry or MemoryGeometry(8, 8, "m")
    memory = SRAM(geometry)
    injector = FaultInjector()
    injector.inject(memory, faults)
    return HuangJoneScheme(MemoryBank([memory])), injector


class TestEffectiveMode:
    def test_two_faults_per_iteration(self):
        faults = [StuckAtFault(CellRef(w, b), 1) for w, b in [(0, 0), (1, 3), (2, 5), (3, 7)]]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector)
        assert report.iterations == 2
        assert len(report.localized) == 4

    def test_odd_fault_count_rounds_up(self):
        faults = [StuckAtFault(CellRef(w, 0), 1) for w in range(5)]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector)
        assert report.iterations == 3

    def test_no_faults_zero_iterations(self):
        scheme, injector = _single_memory_setup([])
        report = scheme.diagnose(injector)
        assert report.iterations == 0
        assert report.time_ns == 0 + 9 * 8 * 8 * 10.0  # aux sweeps only

    def test_drfs_missed_without_drf_mode(self):
        faults = [DataRetentionFault(CellRef(1, 1), 1)]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector)
        assert report.iterations == 0
        assert len(report.missed) == 1

    def test_drfs_localized_with_drf_mode(self):
        faults = [DataRetentionFault(CellRef(1, 1), 1), StuckAtFault(CellRef(2, 2), 0)]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector, include_drf=True)
        assert len(report.localized) == 2
        assert report.pause_ns == 200e6

    def test_weak_cells_always_missed(self):
        """The baseline has no NWRTM: weak cells are unreachable."""
        faults = [WeakCellDefect(CellRef(1, 1), 1)]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector, include_drf=True)
        assert len(report.missed) == 1

    def test_localization_order_right_then_left(self):
        faults = [StuckAtFault(CellRef(0, 1), 1), StuckAtFault(CellRef(0, 6), 1)]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector)
        right = [l for l in report.localized if l.direction == "right"][0]
        left = [l for l in report.localized if l.direction == "left"][0]
        assert right.cell.bit == 6  # highest bit from the right stream
        assert left.cell.bit == 1

    def test_time_matches_eq1(self):
        faults = [StuckAtFault(CellRef(w, 0), 1) for w in range(4)]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector)
        assert report.time_ns == (17 * 2 + 9) * 8 * 8 * 10.0

    def test_max_iterations_cutoff(self):
        faults = [StuckAtFault(CellRef(w, 0), 1) for w in range(8)]
        scheme, injector = _single_memory_setup(faults)
        report = scheme.diagnose(injector, max_iterations=1)
        assert report.iterations == 1
        assert len(report.localized) == 2


class TestParallelBankBehaviour:
    def test_iterations_set_by_worst_memory(self):
        m1 = SRAM(MemoryGeometry(8, 8, "few"))
        m2 = SRAM(MemoryGeometry(8, 8, "many"))
        injector = FaultInjector()
        injector.inject(m1, [StuckAtFault(CellRef(0, 0), 1)])
        injector.inject(
            m2, [StuckAtFault(CellRef(w, 0), 1) for w in range(6)]
        )
        scheme = HuangJoneScheme(MemoryBank([m1, m2]))
        report = scheme.diagnose(injector)
        assert report.iterations == 3  # ceil(6/2), not ceil(1/2)

    def test_controller_sized_by_largest(self):
        m1 = SRAM(MemoryGeometry(4, 2, "small"))
        m2 = SRAM(MemoryGeometry(16, 8, "large"))
        scheme = HuangJoneScheme(MemoryBank([m1, m2]))
        report = scheme.diagnose(FaultInjector())
        assert report.controller_words == 16
        assert report.controller_bits == 8


class TestBitAccurateMode:
    def test_agrees_with_effective_on_iteration_count(self):
        cells = [(1, 3), (1, 6), (2, 2), (3, 5)]
        geometry = MemoryGeometry(4, 8, "m")

        def build(mode_faults):
            memory = SRAM(geometry)
            injector = FaultInjector()
            injector.inject(memory, mode_faults)
            return HuangJoneScheme(MemoryBank([memory])), injector

        effective_faults = [StuckAtFault(CellRef(w, b), 0) for w, b in cells]
        scheme, injector = build(effective_faults)
        effective = scheme.diagnose(injector)

        accurate_faults = [StuckAtFault(CellRef(w, b), 0) for w, b in cells]
        scheme2, injector2 = build(accurate_faults)
        accurate = scheme2.diagnose(injector2, bit_accurate=True)

        assert accurate.iterations == effective.iterations
        assert {l.cell for l in accurate.localized} == {
            l.cell for l in effective.localized
        }

    def test_localizes_mixed_fault_types(self):
        geometry = MemoryGeometry(4, 8, "m")
        memory = SRAM(geometry)
        injector = FaultInjector()
        injector.inject(
            memory,
            [
                StuckAtFault(CellRef(1, 3), 0),
                StuckAtFault(CellRef(2, 2), 1),
                TransitionFault(CellRef(3, 5), rising=True),
            ],
        )
        scheme = HuangJoneScheme(MemoryBank([memory]))
        report = scheme.diagnose(injector, bit_accurate=True)
        assert {l.cell for l in report.localized} == {
            CellRef(1, 3),
            CellRef(2, 2),
            CellRef(3, 5),
        }
        assert report.missed == []

    def test_clean_memory_no_iterations_localize_nothing(self):
        geometry = MemoryGeometry(4, 8, "m")
        memory = SRAM(geometry)
        scheme = HuangJoneScheme(MemoryBank([memory]))
        report = scheme.diagnose(FaultInjector(), bit_accurate=True)
        assert report.localized == []
