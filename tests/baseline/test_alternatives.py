"""Tests for the [5,6] per-memory and [4] same-size alternative schemes."""

import pytest

from repro.baseline.alternatives import (
    PerMemoryBisdScheme,
    SameSizeParallelScheme,
    per_memory_area_penalty,
)
from repro.faults.injector import FaultInjector
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


def _homogeneous_bank():
    return MemoryBank(
        [SRAM(MemoryGeometry(16, 8, f"m{i}")) for i in range(3)]
    )


class TestPerMemoryBisd:
    def test_detects_faults_everywhere(self, hetero_bank):
        injector = FaultInjector()
        injector.inject(hetero_bank.by_name("wide"), StuckAtFault(CellRef(3, 3), 1))
        injector.inject(hetero_bank.by_name("tiny"), StuckAtFault(CellRef(2, 1), 0))
        report = PerMemoryBisdScheme(hetero_bank).diagnose()
        assert CellRef(3, 3) in report.detected_cells("wide")
        assert CellRef(2, 1) in report.detected_cells("tiny")

    def test_time_set_by_slowest_memory(self, hetero_bank):
        report = PerMemoryBisdScheme(hetero_bank).diagnose()
        standalone = PerMemoryBisdScheme(
            MemoryBank([SRAM(MemoryGeometry(16, 8, "wide"))])
        ).diagnose()
        assert report.time_ns == standalone.time_ns

    def test_controller_replication_cost(self, hetero_bank):
        report = PerMemoryBisdScheme(hetero_bank).diagnose()
        assert report.extra_controller_transistors == 5_000 * 3

    def test_area_penalty_dominates_small_memories(self, hetero_bank):
        penalty = per_memory_area_penalty(hetero_bank)
        # Three controllers over ~200 cells of memory: enormous overhead.
        assert penalty > 0.5

    def test_handles_heterogeneous_banks(self, hetero_bank):
        assert PerMemoryBisdScheme(hetero_bank).diagnose().passed

    def test_misses_drfs(self):
        """No NWRTM, no pauses: the alternative baselines miss DRFs too."""
        bank = _homogeneous_bank()
        DataRetentionFault(CellRef(4, 4), 1).attach(bank[0])
        assert PerMemoryBisdScheme(bank).diagnose().passed


class TestSameSizeParallel:
    def test_rejects_heterogeneous_bank(self, hetero_bank):
        with pytest.raises(ValueError):
            SameSizeParallelScheme(hetero_bank)

    def test_diagnoses_homogeneous_bank(self):
        bank = _homogeneous_bank()
        injector = FaultInjector()
        injector.inject(bank[1], StuckAtFault(CellRef(7, 2), 1))
        report = SameSizeParallelScheme(bank).diagnose()
        assert CellRef(7, 2) in report.detected_cells("m1")

    def test_bus_width_accounting(self):
        bank = _homogeneous_bank()
        report = SameSizeParallelScheme(bank).diagnose()
        assert report.wires_per_memory == 8 + 4 + 3  # data + address + control

    def test_faster_than_serialized_proposed(self):
        """Parallel buses beat serial delivery on raw time -- the point is
        they lose on routing, not speed."""
        from repro.core.scheme import FastDiagnosisScheme

        bank = _homogeneous_bank()
        parallel = SameSizeParallelScheme(bank).diagnose()
        proposed = FastDiagnosisScheme(_homogeneous_bank()).diagnose()
        assert parallel.time_ns < proposed.time_ns
