"""Property-based invariants of the baseline session runner.

Three paper-level properties of the iterate-repair flow, checked on the
engine's runner (:func:`repro.engine.baseline_session.run_baseline_session`):

* **R >= 1** -- for any faulty memory in the practical geometry range the
  baseline's measured diagnosis time is at least the proposed scheme's
  (Eq. (3)'s premise; the bound genuinely needs "practical" geometries --
  for degenerate shapes with ``c >> n`` the proposed scheme's background
  extension can exceed a one-iteration baseline).
* **k is monotone** -- injecting additional faults never decreases the
  iteration count the baseline needs.
* **early-abort invariance** -- skipping the provably unproductive
  trailing iterations (only serially invisible faults pending) never
  changes the diagnosed fault set, and can only lower the iteration
  count.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.baseline_session import run_baseline_session
from repro.engine.session import run_session
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

#: Practical geometry range: word-dominated shapes as in distributed
#: e-SRAM buffers.  Keeps the bit-accurate replay fast *and* keeps R >= 1
#: meaningful (see module docstring).
practical_geometries = st.builds(
    MemoryGeometry,
    st.integers(min_value=8, max_value=24),
    st.integers(min_value=2, max_value=8),
    st.just("prop-bl"),
)


@st.composite
def geometry_and_faults(draw, min_faults=1, max_faults=6):
    """A geometry plus distinct-cell localizable/retention faults."""
    geometry = draw(practical_geometries)
    count = draw(st.integers(min_value=min_faults, max_value=max_faults))
    cells = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=geometry.words - 1),
                st.integers(min_value=0, max_value=geometry.bits - 1),
            ),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    kinds = draw(
        st.lists(
            st.sampled_from(["saf0", "saf1", "tf-up", "tf-down", "drf"]),
            min_size=count,
            max_size=count,
        )
    )
    return geometry, list(zip(cells, kinds))


def make_faults(spec):
    faults = []
    for (word, bit), kind in spec:
        cell = CellRef(word, bit)
        if kind == "saf0":
            faults.append(StuckAtFault(cell, value=0))
        elif kind == "saf1":
            faults.append(StuckAtFault(cell, value=1))
        elif kind == "tf-up":
            faults.append(TransitionFault(cell, rising=True))
        elif kind == "tf-down":
            faults.append(TransitionFault(cell, rising=False))
        else:
            faults.append(DataRetentionFault(cell, fragile_value=1))
    return faults


def faulty_memory(geometry, fault_spec):
    memory = SRAM(geometry)
    injector = FaultInjector()
    injector.inject(memory, make_faults(fault_spec))
    return memory, injector


class TestReductionFactor:
    @settings(max_examples=25, deadline=None)
    @given(geometry_and_faults())
    def test_r_at_least_one_for_any_faulty_memory(self, case):
        geometry, fault_spec = case
        baseline_memory, baseline_injector = faulty_memory(geometry, fault_spec)
        proposed_memory, _ = faulty_memory(geometry, fault_spec)
        baseline = run_baseline_session(
            HuangJoneScheme(MemoryBank([baseline_memory])),
            baseline_injector,
            backend="auto",
            bit_accurate=True,
        )
        proposed = run_session(
            FastDiagnosisScheme(MemoryBank([proposed_memory])), backend="auto"
        )
        assert baseline.iterations >= 1
        assert baseline.time_ns / proposed.time_ns >= 1.0


class TestIterationMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(geometry_and_faults(min_faults=2, max_faults=8), st.data())
    def test_k_monotone_in_fault_count(self, case, data):
        geometry, fault_spec = case
        prefix_size = data.draw(
            st.integers(min_value=1, max_value=len(fault_spec) - 1)
        )

        def iterations(spec):
            memory, injector = faulty_memory(geometry, spec)
            report = run_baseline_session(
                HuangJoneScheme(MemoryBank([memory])),
                injector,
                backend="auto",
                include_drf=True,
            )
            return report.iterations

        assert iterations(fault_spec[:prefix_size]) <= iterations(fault_spec)


class TestEarlyAbortInvariance:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**20),
        st.floats(min_value=0.01, max_value=0.08),
    )
    def test_early_abort_never_changes_diagnosed_set(self, seed, defect_rate):
        geometry = MemoryGeometry(16, 6, "prop-ea")

        def run(early_abort):
            memory = SRAM(geometry)
            injector = FaultInjector()
            injector.inject(
                memory, sample_population(geometry, defect_rate, rng=seed).faults
            )
            return run_baseline_session(
                HuangJoneScheme(MemoryBank([memory])),
                injector,
                backend="numpy",
                bit_accurate=True,
                early_abort=early_abort,
            )

        exact = run(early_abort=False)
        aborted = run(early_abort=True)
        assert aborted.localized == exact.localized
        assert [(n, f.describe()) for n, f in aborted.missed] == [
            (n, f.describe()) for n, f in exact.missed
        ]
        assert aborted.iterations <= exact.iterations
