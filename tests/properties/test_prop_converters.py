"""Property-based tests for the SPC/PSC pair: the paper's width-adaptation law."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.background_gen import DataBackgroundGenerator
from repro.core.psc import ParallelToSerialConverter
from repro.core.spc import SerialToParallelConverter
from repro.util.bitops import bits_to_int, mask


@st.composite
def delivery_case(draw):
    controller_bits = draw(st.integers(min_value=1, max_value=64))
    memory_bits = draw(st.integers(min_value=1, max_value=controller_bits))
    word = draw(st.integers(min_value=0, max_value=mask(controller_bits)))
    return controller_bits, memory_bits, word


class TestSpcDeliveryLaws:
    @given(delivery_case())
    def test_msb_first_keeps_low_bits_for_any_width(self, case):
        """Sec. 3.2's design goal, as a universal property: every memory
        width receives exactly DP[c'-1:0]."""
        controller_bits, memory_bits, word = case
        generator = DataBackgroundGenerator(controller_bits, msb_first=True)
        spc = SerialToParallelConverter(memory_bits, msb_first=True)
        spc.load_stream(generator.stream(word))
        assert spc.parallel_out == word & mask(memory_bits)

    @given(delivery_case())
    def test_lsb_first_keeps_top_bits(self, case):
        """The flawed variant's law: DP[c-1:c-c'] lands instead."""
        controller_bits, memory_bits, word = case
        generator = DataBackgroundGenerator(controller_bits, msb_first=False)
        spc = SerialToParallelConverter(memory_bits, msb_first=False)
        spc.load_stream(generator.stream(word))
        assert spc.parallel_out == word >> (controller_bits - memory_bits)

    @given(delivery_case())
    def test_closed_form_agrees_with_shifting(self, case):
        controller_bits, memory_bits, word = case
        for msb_first in (True, False):
            generator = DataBackgroundGenerator(controller_bits, msb_first)
            spc = SerialToParallelConverter(memory_bits, msb_first)
            spc.load_stream(generator.stream(word))
            assert spc.parallel_out == spc.expected_pattern(word, controller_bits)

    @given(delivery_case())
    def test_equal_width_always_exact(self, case):
        controller_bits, _, word = case
        for msb_first in (True, False):
            generator = DataBackgroundGenerator(controller_bits, msb_first)
            spc = SerialToParallelConverter(controller_bits, msb_first)
            spc.load_stream(generator.stream(word))
            assert spc.parallel_out == word


class TestPscLaws:
    @given(st.integers(min_value=1, max_value=64), st.data())
    def test_serialize_roundtrip(self, width, data):
        word = data.draw(st.integers(min_value=0, max_value=mask(width)))
        psc = ParallelToSerialConverter(width)
        assert bits_to_int(psc.serialize(word)) == word

    @given(st.integers(min_value=1, max_value=32), st.data())
    def test_repeated_captures_independent(self, width, data):
        words = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=mask(width)),
                min_size=1,
                max_size=8,
            )
        )
        psc = ParallelToSerialConverter(width)
        for word in words:
            assert bits_to_int(psc.serialize(word)) == word
