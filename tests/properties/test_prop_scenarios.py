"""Property-based invariants of the scenario cluster sampler.

The three properties the scenario engine's reproducibility story rests
on:

* **worker-count determinism** -- a scenario fleet's aggregated report is
  a pure function of the spec (master seed included): inline execution,
  pooled execution and any chunking must agree exactly;
* **radius monotonicity** -- growing a cluster field's decay radius never
  lowers the defect rate it assigns anywhere (so "wider clustering"
  always means "at least as many defects" for every memory);
* **mean convergence** -- the fault populations the field drives match
  the configured rates: each memory receives exactly the closed-form
  count for its assigned rate, and the per-access upset probability of
  the intermittent models converges empirically to the configured value.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.intermittent import IntermittentReadFault
from repro.faults.population import expected_fault_count
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.scenarios import ClusterField, ScenarioSpec, run_scenario_fleet
from repro.scenarios.cluster import assign_rates, sample_cluster_centers
from repro.scenarios.flow import clustered_sampler

#: Small scenario population shared by the determinism checks.
SPEC = ScenarioSpec(
    shapes=((12, 6, "alpha"), (9, 5, "beta"), (16, 4, "gamma")),
    campaigns=4,
    master_seed=11,
    base_defect_rate=0.01,
    cluster_count=2,
    cluster_radius=30.0,
    cluster_peak_rate=0.05,
    intermittent_rate=0.01,
    upset_probability=0.4,
    backend="auto",
)


def comparable(report) -> dict:
    # Run metadata (wall clock, plan-cache traffic) varies with worker
    # layout; only the deterministic result content is compared.
    payload = report.to_json_dict()
    payload.pop("elapsed_s")
    payload.pop("campaigns_per_sec")
    payload.pop("plan_cache")
    return payload


class TestWorkerCountDeterminism:
    def test_pooled_matches_inline(self):
        inline = run_scenario_fleet(SPEC, workers=1)
        pooled = run_scenario_fleet(SPEC, workers=2, chunk_size=1)
        assert comparable(pooled) == comparable(inline)

    def test_chunking_does_not_change_results(self):
        whole = run_scenario_fleet(SPEC, workers=1, chunk_size=4)
        minced = run_scenario_fleet(SPEC, workers=1, chunk_size=1)
        assert comparable(whole) == comparable(minced)

    def test_three_workers_match_two(self):
        two = run_scenario_fleet(SPEC, workers=2, chunk_size=1)
        three = run_scenario_fleet(SPEC, workers=3, chunk_size=1)
        assert comparable(two) == comparable(three)


centers_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 100.0, allow_nan=False),
        st.floats(0.0, 100.0, allow_nan=False),
    ),
    min_size=0,
    max_size=4,
).map(tuple)


class TestRadiusMonotonicity:
    @given(
        centers=centers_strategy,
        x=st.floats(0.0, 100.0, allow_nan=False),
        y=st.floats(0.0, 100.0, allow_nan=False),
        radius=st.floats(0.5, 80.0, allow_nan=False),
        growth=st.floats(0.0, 80.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_never_decreases_with_radius(
        self, centers, x, y, radius, growth
    ):
        narrow = ClusterField(
            centers=centers, base_rate=0.002, peak_rate=0.04, radius=radius
        )
        wide = ClusterField(
            centers=centers,
            base_rate=0.002,
            peak_rate=0.04,
            radius=radius + growth,
        )
        assert wide.rate_at(x, y) >= narrow.rate_at(x, y)

    @given(radius=st.floats(0.5, 40.0), growth=st.floats(0.1, 60.0))
    @settings(max_examples=25, deadline=None)
    def test_assigned_rates_monotone_for_every_memory(self, radius, growth):
        import dataclasses

        soc = SPEC.build_soc()
        floorplan = SPEC.build_floorplan(soc)
        narrow = dataclasses.replace(SPEC, cluster_radius=radius)
        wide = dataclasses.replace(SPEC, cluster_radius=radius + growth)
        narrow_rates = assign_rates(narrow.cluster_field(0), floorplan)
        wide_rates = assign_rates(wide.cluster_field(0), floorplan)
        assert set(narrow_rates) == set(wide_rates)
        for name, rate in narrow_rates.items():
            assert wide_rates[name] >= rate

    def test_rate_clamped_at_max(self):
        field = ClusterField(
            centers=((0.0, 0.0),) * 8,
            base_rate=0.01,
            peak_rate=0.2,
            radius=50.0,
            max_rate=0.15,
        )
        assert field.rate_at(0.0, 0.0) == 0.15


class TestMeanConvergence:
    def test_population_sizes_match_assigned_rates_exactly(self):
        # The field -> population pipeline realizes the closed-form count
        # for every memory's assigned rate, campaign for campaign.
        soc = SPEC.build_soc()
        floorplan = SPEC.build_floorplan(soc)
        for index in range(4):
            rates = assign_rates(SPEC.cluster_field(index), floorplan)
            sampler = clustered_sampler(SPEC, rates, SPEC.campaign_seed(index))
            for position, geometry in enumerate(soc.geometries):
                memory = SRAM(geometry)
                faults = sampler(position, memory)
                assert len(faults) == expected_fault_count(
                    geometry, rates[geometry.name]
                )

    def test_fleet_mean_assigned_rate_matches_field_mean(self):
        import dataclasses

        spec = dataclasses.replace(
            SPEC, cluster_centers=((20.0, 20.0), (70.0, 60.0))
        )
        report = run_scenario_fleet(spec, workers=1)
        floorplan = spec.build_floorplan()
        expected = spec.cluster_field(0).mean_rate(floorplan.placements)
        # Shared explicit centers -> every campaign sees the same field,
        # so the fleet mean equals the analytic placement mean exactly.
        assert report.assigned_rate.count == spec.campaigns
        assert abs(report.assigned_rate.mean - expected) < 1e-12

    @given(
        probability=st.floats(0.05, 0.95),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_upset_rate_converges_to_configured_probability(
        self, probability, seed
    ):
        memory = SRAM(MemoryGeometry(4, 4, "conv"))
        fault = IntermittentReadFault(CellRef(1, 2), probability, seed=seed)
        fault.attach(memory)
        trials = 4000
        upsets = sum(memory.read(1) != 0 for _ in range(trials))
        empirical = upsets / trials
        # 4000 Bernoulli draws: a +/- 0.05 window is > 6 sigma at p=0.5.
        assert abs(empirical - probability) < 0.05

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_cluster_centers_land_on_die(self, seed):
        centers = sample_cluster_centers(5, 100.0, seed, 3)
        assert len(centers) == 5
        assert all(0.0 <= x <= 100.0 and 0.0 <= y <= 100.0 for x, y in centers)
