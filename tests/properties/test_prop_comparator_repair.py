"""Property tests: comparator wrap-equivalence and redundancy soundness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparator import ComparatorArray
from repro.core.redundancy import RedundancyBudget, allocate_redundancy
from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import Operation, OpKind
from repro.memory.geometry import CellRef
from repro.util.bitops import mask


@st.composite
def consistent_elements(draw):
    """Random March elements whose reads match the walked state.

    The state entering the element is drawn too (the previous element's
    final data), so the pair (element, entry_state) is self-consistent.
    """
    entry_state = draw(st.integers(min_value=0, max_value=1))
    state = entry_state
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if draw(st.booleans()):
            ops.append(Operation(OpKind.READ, state))
        else:
            value = draw(st.integers(min_value=0, max_value=1))
            kind = draw(st.sampled_from([OpKind.WRITE, OpKind.NWRC_WRITE]))
            ops.append(Operation(kind, value))
            state = value
    order = draw(st.sampled_from(list(AddressOrder)))
    return entry_state, MarchElement(order, tuple(ops))


class TestComparatorWrapEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(consistent_elements(), st.integers(min_value=1, max_value=10), st.data())
    def test_wrapped_expectation_equals_double_application(
        self, pair, bits, data
    ):
        """The wrap rule IS re-application: simulating the element's ops
        twice over a good cell value gives exactly the comparator's
        wrapped expectation at each read."""
        entry_state, element = pair
        background = data.draw(st.integers(min_value=0, max_value=mask(bits)))
        comparator = ComparatorArray("p", bits)

        def word_of(value: int) -> int:
            return background if value else background ^ mask(bits)

        # First application: track the word value op by op.
        value = word_of(entry_state)
        for op in element.operations:
            if op.is_write:
                value = word_of(op.data)
        # Second application (the wrapped visit).
        for op_index, op in enumerate(element.operations):
            if op.is_read:
                expected = comparator.expected_word(
                    element, op_index, background, wrapped=True
                )
                assert expected == value, f"op {op_index} of {element.notation()}"
            else:
                value = word_of(op.data)

    @settings(max_examples=80, deadline=None)
    @given(consistent_elements(), st.integers(min_value=1, max_value=10), st.data())
    def test_unwrapped_expectation_is_op_data(self, pair, bits, data):
        entry_state, element = pair
        background = data.draw(st.integers(min_value=0, max_value=mask(bits)))
        comparator = ComparatorArray("p", bits)
        for op_index, op in enumerate(element.operations):
            if op.is_read:
                expected = comparator.expected_word(
                    element, op_index, background, wrapped=False
                )
                want = background if op.data else background ^ mask(bits)
                assert expected == want


@st.composite
def failure_patterns(draw):
    cells = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ),
            min_size=0,
            max_size=10,
        )
    )
    return {CellRef(w, b) for w, b in cells}


class TestRedundancySoundness:
    @settings(max_examples=80, deadline=None)
    @given(
        failure_patterns(),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    )
    def test_feasible_plans_cover_everything(self, cells, rows, cols):
        plan = allocate_redundancy(cells, RedundancyBudget(rows, cols))
        if plan.feasible:
            assert all(plan.covers(cell) for cell in cells)
            assert len(plan.repair_rows) <= rows
            assert len(plan.repair_cols) <= cols

    @settings(max_examples=80, deadline=None)
    @given(failure_patterns())
    def test_generous_budget_always_feasible(self, cells):
        budget = RedundancyBudget(8, 8)  # one spare per possible row/col
        plan = allocate_redundancy(cells, budget)
        assert plan.feasible

    @settings(max_examples=80, deadline=None)
    @given(
        failure_patterns(),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
    )
    def test_budget_monotonicity(self, cells, rows, cols):
        """If a budget suffices, any bigger budget does too."""
        small = allocate_redundancy(cells, RedundancyBudget(rows, cols))
        if small.feasible:
            large = allocate_redundancy(cells, RedundancyBudget(rows + 1, cols + 1))
            assert large.feasible
