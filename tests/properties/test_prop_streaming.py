"""Property-based invariants of the streaming aggregation layer.

The windowed-monitoring story rests on three invariants:

* **merge-order invariance** -- folding per-window ``StreamingStats``
  accumulators together gives the same result no matter how the windows
  are grouped or ordered: swapped operands agree *bit-for-bit* (the
  merge is written in symmetric form), and arbitrary merge trees agree
  with a sequential fold to float tolerance with exact count/extrema;
* **timeline purity** -- a window's events are a pure function of
  ``(spec, window)``: re-evaluating any window, in any order, from any
  fresh timeline instance, reproduces identical draws, and each event's
  arrival time lands strictly inside its half-open window;
* **aggregator linearity** -- a ``WindowAggregator`` fed the same window
  reports in the same order from a restored checkpoint state continues
  byte-for-byte.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregate import StreamingStats
from repro.streaming import EventTimeline, WindowAggregator, WindowReport

#: Finite, reasonably-scaled observations (the engine only ever feeds
#: counts, rates and nanosecond durations into these accumulators).
values = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    max_size=24,
)


def fold(values_list: list[float]) -> StreamingStats:
    stats = StreamingStats()
    for value in values_list:
        stats.add(value)
    return stats


@given(left=values, right=values)
@settings(max_examples=60, deadline=None)
def test_merge_is_bitwise_commutative(left, right):
    ab = fold(left)
    ab.merge(fold(right))
    ba = fold(right)
    ba.merge(fold(left))
    assert ab.state_dict() == ba.state_dict()


@given(
    groups=st.lists(values, min_size=1, max_size=6),
    order=st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_merge_order_never_changes_the_result(groups, order):
    flat = [value for group in groups for value in group]
    sequential = fold(flat)

    shuffled = list(groups)
    order.shuffle(shuffled)
    merged = StreamingStats()
    for group in shuffled:
        merged.merge(fold(group))

    assert merged.count == sequential.count
    assert merged.minimum == sequential.minimum
    assert merged.maximum == sequential.maximum
    if sequential.count:
        assert math.isclose(
            merged.mean, sequential.mean, rel_tol=1e-9, abs_tol=1e-6
        )
        assert math.isclose(
            merged.variance, sequential.variance, rel_tol=1e-6, abs_tol=1e-3
        )
    assert merged.variance >= 0.0
    assert not math.isnan(merged.mean)


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    window=st.integers(min_value=0, max_value=10**9),
    mean=st.floats(min_value=0.0, max_value=8.0),
    burst=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=40, deadline=None)
def test_timeline_windows_are_pure_and_seekable(seed, window, mean, burst):
    def build():
        return EventTimeline(
            cells_by_memory={"alpha": 64, "beta": 48, "gamma": 96},
            weights={"alpha": 0.5, "beta": 0.2, "gamma": 0.3},
            window_ns=1000.0,
            events_per_window=mean,
            master_seed=seed,
            burst_probability=burst,
        )

    timeline = build()
    events = timeline.events_for_window(window)
    # Purity: a fresh instance that never saw earlier windows agrees.
    assert build().events_for_window(window) == events
    start = timeline.window_start_ns(window)
    for event in events:
        assert event.window == window
        assert start <= event.time_ns < start + timeline.window_ns
        assert timeline.window_of(event.time_ns) == window
        assert event.memory in ("alpha", "beta", "gamma")


@given(
    counts=st.lists(st.integers(min_value=0, max_value=12), max_size=20),
    cut=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_aggregator_state_roundtrip_is_exact(counts, cut):
    def report(index: int, events: int) -> WindowReport:
        return WindowReport(
            index=index,
            start_ns=index * 1000.0,
            duration_ns=1000.0,
            events=events,
            seu_events=events // 2,
            int_read_events=events - events // 2,
            affected_memories=min(events, 3),
            detected_events=max(events - 1, 0),
            escaped_events=min(events, 1),
            sweep_failures=events,
            sweep_time_ns=float(events) * 10.0,
            burst_injected=events > 8,
        )

    straight = WindowAggregator(retain=4)
    for index, events in enumerate(counts):
        straight.add(report(index, events))

    cut = min(cut, len(counts))
    resumed = WindowAggregator(retain=4)
    for index, events in enumerate(counts[:cut]):
        resumed.add(report(index, events))
    resumed = WindowAggregator.from_state(resumed.state_dict())
    for index, events in enumerate(counts[cut:], start=cut):
        resumed.add(report(index, events))

    assert resumed.canonical_json() == straight.canonical_json()
