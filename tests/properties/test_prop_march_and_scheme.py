"""Property-based tests for March-simulator and scheme invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme import FastDiagnosisScheme
from repro.core.timing import proposed_cycles, proposed_operation_cycles
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.march.library import march_c_minus, march_c_nw, march_cw, march_cw_nw, mats_plus
from repro.march.simulator import MarchSimulator
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

geometries = st.builds(
    MemoryGeometry,
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=2, max_value=10),
    st.just("prop"),
)

algorithms = st.sampled_from(
    [mats_plus, march_c_minus, march_c_nw, march_cw, march_cw_nw]
)


@st.composite
def geometry_and_cell(draw):
    geometry = draw(geometries)
    word = draw(st.integers(min_value=0, max_value=geometry.words - 1))
    bit = draw(st.integers(min_value=0, max_value=geometry.bits - 1))
    return geometry, CellRef(word, bit)


class TestSimulatorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(geometries, algorithms)
    def test_fault_free_memory_never_fails(self, geometry, factory):
        memory = SRAM(geometry)
        result = MarchSimulator().run(memory, factory(geometry.bits))
        assert result.passed

    @settings(max_examples=40, deadline=None)
    @given(geometry_and_cell(), st.integers(min_value=0, max_value=1))
    def test_any_saf_detected_and_localized_by_march_c(self, pair, value):
        geometry, cell = pair
        memory = SRAM(geometry)
        StuckAtFault(cell, value).attach(memory)
        result = MarchSimulator().run(memory, march_c_minus(geometry.bits))
        assert cell in result.detected_cells()

    @settings(max_examples=40, deadline=None)
    @given(geometry_and_cell(), st.booleans())
    def test_any_tf_detected_by_march_c(self, pair, rising):
        geometry, cell = pair
        memory = SRAM(geometry)
        TransitionFault(cell, rising).attach(memory)
        result = MarchSimulator().run(memory, march_c_minus(geometry.bits))
        assert cell in result.detected_cells()

    @settings(max_examples=30, deadline=None)
    @given(geometries)
    def test_march_c_leaves_all_zeros(self, geometry):
        memory = SRAM(geometry)
        MarchSimulator().run(memory, march_c_minus(geometry.bits))
        assert all(value == 0 for value in memory.dump())

    @settings(max_examples=30, deadline=None)
    @given(geometries)
    def test_failure_free_syndromes_empty(self, geometry):
        memory = SRAM(geometry)
        result = MarchSimulator().run(memory, march_cw_nw(geometry.bits))
        assert result.detected_cells() == set()


class TestTimingLaws:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=2, max_value=128),
    )
    def test_generic_counter_equals_eq2(self, words, bits):
        """Eq. (2) holds for every geometry, by construction and by count."""
        assert proposed_cycles(march_cw(bits), words, bits) == \
            proposed_operation_cycles(words, bits)

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=2, max_value=128),
    )
    def test_nwrtm_merge_costs_nothing(self, words, bits):
        assert proposed_cycles(march_cw_nw(bits), words, bits) == \
            proposed_cycles(march_cw(bits), words, bits)


class TestSchemeInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=2, max_value=10),
                st.integers(min_value=2, max_value=8),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_heterogeneous_fault_free_bank_passes(self, shapes):
        """Wrap-around comparison never produces false failures."""
        memories = [
            SRAM(MemoryGeometry(words, bits, f"m{i}"))
            for i, (words, bits) in enumerate(shapes)
        ]
        report = FastDiagnosisScheme(MemoryBank(memories)).diagnose()
        assert report.passed

    @settings(max_examples=15, deadline=None)
    @given(geometry_and_cell(), st.integers(min_value=0, max_value=1))
    def test_single_saf_always_exactly_localized(self, pair, value):
        geometry, cell = pair
        memory = SRAM(geometry)
        StuckAtFault(cell, value).attach(memory)
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
        assert report.detected_cells(geometry.name) == {cell}
