"""Property-based tests for bit utilities and shift registers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serial.shift_register import ShiftDirection, ShiftRegister
from repro.util.bitops import (
    bits_to_int,
    complement,
    int_to_bits,
    mask,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
)

widths = st.integers(min_value=1, max_value=128)


@st.composite
def word_and_width(draw):
    width = draw(widths)
    word = draw(st.integers(min_value=0, max_value=mask(width)))
    return word, width


class TestBitopsProperties:
    @given(word_and_width())
    def test_bits_roundtrip(self, pair):
        word, width = pair
        assert bits_to_int(int_to_bits(word, width)) == word

    @given(word_and_width())
    def test_complement_involution(self, pair):
        word, width = pair
        assert complement(complement(word, width), width) == word

    @given(word_and_width())
    def test_complement_popcount(self, pair):
        word, width = pair
        assert popcount(word) + popcount(complement(word, width)) == width

    @given(word_and_width())
    def test_reverse_involution(self, pair):
        word, width = pair
        assert reverse_bits(reverse_bits(word, width), width) == word

    @given(word_and_width(), st.integers(min_value=0, max_value=256))
    def test_rotate_inverse(self, pair, amount):
        word, width = pair
        assert rotate_right(rotate_left(word, width, amount), width, amount) == word

    @given(word_and_width())
    def test_rotate_preserves_popcount(self, pair):
        word, width = pair
        assert popcount(rotate_left(word, width, 3)) == popcount(word)


class TestShiftRegisterProperties:
    @given(word_and_width())
    def test_msb_first_right_shift_is_identity_load(self, pair):
        """The SPC delivery law: a full MSB-first right shift lands the word."""
        word, width = pair
        register = ShiftRegister(width)
        register.shift_word_in(word, ShiftDirection.RIGHT, msb_first=True)
        assert register.value == word

    @given(word_and_width())
    def test_lsb_first_left_shift_is_identity_load(self, pair):
        word, width = pair
        register = ShiftRegister(width)
        register.shift_word_in(word, ShiftDirection.LEFT, msb_first=False)
        assert register.value == word

    @given(word_and_width())
    def test_load_then_right_out_emits_msb_first(self, pair):
        word, width = pair
        register = ShiftRegister(width)
        register.load(word)
        emitted = register.shift_word_out(ShiftDirection.RIGHT)
        assert bits_to_int(list(reversed(emitted))) == word

    @given(word_and_width())
    def test_load_then_left_out_emits_lsb_first(self, pair):
        """The PSC serialization law (LSB first back to the controller)."""
        word, width = pair
        register = ShiftRegister(width)
        register.load(word)
        emitted = register.shift_word_out(ShiftDirection.LEFT)
        assert bits_to_int(emitted) == word

    @given(word_and_width())
    def test_register_drains_to_fill_value(self, pair):
        word, width = pair
        register = ShiftRegister(width)
        register.load(word)
        register.shift_word_out(ShiftDirection.LEFT, fill=0)
        assert register.value == 0
