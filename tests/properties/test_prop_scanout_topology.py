"""Property-based tests: scan-chain round-trips, topology bijection,
and static-vs-dynamic March analysis on random (consistent) algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scanout import DiagnosisScanChain
from repro.march.algorithm import MarchAlgorithm, MarchStep
from repro.march.conditions import analyze
from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import Operation, OpKind
from repro.march.simulator import FailureRecord, MarchSimulator
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.memory.topology import ArrayTopology
from repro.util.bitops import mask


@st.composite
def failure_records(draw, geometry):
    address = draw(st.integers(min_value=0, max_value=geometry.words - 1))
    syndrome = draw(st.integers(min_value=1, max_value=mask(geometry.bits)))
    step = draw(st.integers(min_value=0, max_value=255))
    op = draw(st.integers(min_value=0, max_value=15))
    return FailureRecord(
        memory_name="p",
        step_index=step,
        step_label=f"S{step}",
        op_index=op,
        operation="r0",
        address=address,
        background=mask(geometry.bits),
        expected=0,
        observed=syndrome,
    )


class TestScanChainProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_roundtrip_any_failure_list(self, data):
        geometry = MemoryGeometry(
            data.draw(st.integers(min_value=2, max_value=64)),
            data.draw(st.integers(min_value=1, max_value=32)),
            "p",
        )
        failures = data.draw(
            st.lists(failure_records(geometry), min_size=0, max_size=8)
        )
        chain = DiagnosisScanChain(geometry)
        frames = chain.decode(chain.encode(failures))
        assert len(frames) == len(failures)
        for frame, failure in zip(frames, failures):
            assert frame.address == failure.address
            assert frame.syndrome == failure.syndrome
            assert frame.step_index == failure.step_index
            assert frame.op_index == failure.op_index


class TestTopologyProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_location_is_a_bijection(self, rows, bits, mux):
        geometry = MemoryGeometry(rows * mux, bits, "p")
        topology = ArrayTopology(geometry, mux_factor=mux)
        locations = set()
        for cell in geometry.all_cells():
            location = topology.location(cell)
            assert topology.cell_at(location) == cell
            locations.add((location.row, location.col))
        assert len(locations) == geometry.cells

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=4),
    )
    def test_same_word_bits_always_mux_apart(self, rows, bits, mux):
        geometry = MemoryGeometry(rows * mux, bits, "p")
        topology = ArrayTopology(geometry, mux_factor=mux)
        cell_a = CellRef(0, 0)
        cell_b = CellRef(0, 1)
        assert topology.logical_bit_distance(cell_a, cell_b) == mux


@st.composite
def consistent_algorithms(draw):
    """Random March algorithms whose reads match the walked state.

    Elements are generated against a tracked uniform state so that a
    fault-free memory always passes -- the precondition for comparing the
    static analyzer with the simulator.
    """
    bits = draw(st.integers(min_value=2, max_value=4))
    state = None
    steps = []
    element_count = draw(st.integers(min_value=2, max_value=5))
    for index in range(element_count):
        ops = []
        op_count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(op_count):
            if state is not None and draw(st.booleans()):
                ops.append(Operation(OpKind.READ, state))
            else:
                value = draw(st.integers(min_value=0, max_value=1))
                ops.append(Operation(OpKind.WRITE, value))
                state = value
        if not any(op.is_write for op in ops) and state is None:
            ops.append(Operation(OpKind.WRITE, 0))
            state = 0
        order = draw(st.sampled_from(list(AddressOrder)))
        background = (1 << bits) - 1
        steps.append(
            MarchStep(MarchElement(order, tuple(ops)), background, f"E{index}")
        )
    return MarchAlgorithm("random", bits, steps)


class TestRandomAlgorithmCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(consistent_algorithms())
    def test_fault_free_consistency(self, algorithm):
        """Generated algorithms are self-consistent on clean memories."""
        memory = SRAM(MemoryGeometry(6, algorithm.bits, "p"))
        assert MarchSimulator().run(memory, algorithm).passed

    @settings(max_examples=40, deadline=None)
    @given(consistent_algorithms())
    def test_static_saf_verdict_matches_simulation(self, algorithm):
        from repro.faults.stuck_at import StuckAtFault

        static = analyze(algorithm).detects_saf
        geometry = MemoryGeometry(6, algorithm.bits, "p")
        dynamic = True
        for value in (0, 1):
            memory = SRAM(geometry)
            StuckAtFault(CellRef(3, 1), value).attach(memory)
            if MarchSimulator().run(memory, algorithm).passed:
                dynamic = False
        assert static == dynamic

    @settings(max_examples=40, deadline=None)
    @given(consistent_algorithms())
    def test_static_tf_verdict_matches_simulation(self, algorithm):
        from repro.faults.transition import TransitionFault

        properties = analyze(algorithm)
        geometry = MemoryGeometry(6, algorithm.bits, "p")
        for rising, verdict in (
            (True, properties.detects_tf_up),
            (False, properties.detects_tf_down),
        ):
            memory = SRAM(geometry)
            TransitionFault(CellRef(3, 1), rising).attach(memory)
            dynamic = not MarchSimulator().run(memory, algorithm).passed
            assert verdict == dynamic
