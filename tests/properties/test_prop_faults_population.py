"""Property-based tests for fault populations and serial masking forms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.population import expected_fault_count, sample_population
from repro.faults.stuck_at import StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.serial.masking import (
    clean_write_cells_bidirectional,
    clean_write_cells_unidirectional,
    localizable_bits_bidirectional,
)
from repro.serial.unidirectional import UnidirectionalSerialInterface
from repro.util.bitops import mask

geometries = st.builds(
    MemoryGeometry,
    st.integers(min_value=4, max_value=64),
    st.integers(min_value=2, max_value=16),
    st.just("prop"),
)


class TestPopulationProperties:
    @settings(max_examples=30, deadline=None)
    @given(geometries, st.floats(min_value=0.0, max_value=0.2), st.integers(0, 1000))
    def test_size_matches_closed_form(self, geometry, rate, seed):
        population = sample_population(geometry, rate, rng=seed)
        assert population.size == expected_fault_count(geometry, rate)

    @settings(max_examples=30, deadline=None)
    @given(geometries, st.integers(0, 1000))
    def test_victims_unique(self, geometry, seed):
        population = sample_population(geometry, 0.1, rng=seed)
        victims = [f.victims[0] for f in population.faults]
        assert len(victims) == len(set(victims))

    @settings(max_examples=30, deadline=None)
    @given(geometries, st.integers(0, 1000))
    def test_all_cells_in_bounds(self, geometry, seed):
        population = sample_population(geometry, 0.1, rng=seed)
        for fault in population.faults:
            for cell in fault.cells:
                geometry.check_cell(cell)

    @settings(max_examples=20, deadline=None)
    @given(geometries, st.integers(0, 1000))
    def test_histogram_partitions_population(self, geometry, seed):
        population = sample_population(geometry, 0.1, rng=seed)
        assert sum(population.class_histogram().values()) == population.size
        assert (
            population.m1_localizable
            + population.retention_faults
            == population.size
        )


class TestMaskingClosedFormProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=16),
        st.data(),
    )
    def test_unidirectional_clean_set_matches_simulation(self, bits, data):
        faulty_bits = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=bits - 1),
                min_size=0,
                max_size=4,
                unique=True,
            )
        )
        memory = SRAM(MemoryGeometry(1, bits, "m"))
        for bit in faulty_bits:
            StuckAtFault(CellRef(0, bit), 0).attach(memory)
        interface = UnidirectionalSerialInterface(memory)
        interface.fill_word(0, mask(bits))
        word = memory.read(0)
        received = {i for i in range(bits) if (word >> i) & 1}
        assert received == clean_write_cells_unidirectional(faulty_bits, bits)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=2, max_value=32), st.data())
    def test_bidirectional_superset_of_unidirectional(self, bits, data):
        faulty_bits = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=bits - 1),
                min_size=0,
                max_size=6,
                unique=True,
            )
        )
        uni = clean_write_cells_unidirectional(faulty_bits, bits)
        bi = clean_write_cells_bidirectional(faulty_bits, bits)
        assert uni <= bi

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=2, max_value=32), st.data())
    def test_localizable_are_extremes(self, bits, data):
        faulty_bits = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=bits - 1),
                min_size=1,
                max_size=6,
                unique=True,
            )
        )
        localizable = localizable_bits_bidirectional(faulty_bits, bits)
        assert min(faulty_bits) in localizable
        assert max(faulty_bits) in localizable
        assert len(localizable) <= 2
