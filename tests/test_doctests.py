"""Run the library's embedded doctests (API examples stay truthful)."""

import doctest

import pytest

import repro.analysis.area
import repro.analysis.timing_model
import repro.baseline.diag_rsmarch
import repro.baseline.timing
import repro.core.timing
import repro.faults.population
import repro.march.backgrounds
import repro.util.units

MODULES = [
    repro.analysis.area,
    repro.analysis.timing_model,
    repro.baseline.diag_rsmarch,
    repro.baseline.timing,
    repro.core.timing,
    repro.faults.population,
    repro.march.backgrounds,
    repro.util.units,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__}: no doctests collected"
