"""Golden-file regression: canonical campaign reports, frozen as JSON.

Three canonical campaigns -- the buffer-cluster motivating example, a
heterogeneous case-study SoC and a small SoC whose baseline runs in
bit-accurate serial-replay mode -- are executed end to end and their
ProposedReport + baseline report serializations compared field-for-field
against fixtures in ``tests/golden/``.  Any behavioural drift in the
diagnosis pipeline (schedule accounting, failure capture, localization
order, repair bookkeeping) shows up as a readable JSON diff.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_campaigns.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.campaign import CampaignReport, DiagnosisCampaign
from repro.memory.geometry import MemoryGeometry
from repro.soc.case_study import case_study_soc
from repro.soc.chip import SoCConfig

GOLDEN_DIR = Path(__file__).parent / "golden"


def small_soc() -> SoCConfig:
    return SoCConfig(
        name="small-pair",
        geometries=[
            MemoryGeometry(16, 8, "sp_wide"),
            MemoryGeometry(12, 6, "sp_narrow"),
        ],
        period_ns=10.0,
    )


#: The three canonical campaigns.  Fixed seeds + the numpy backend keep
#: every field deterministic; the backend choice itself is covered by the
#: differential suite, so goldens pin *behaviour*, not backend parity.
CAMPAIGNS: dict[str, dict] = {
    "buffer_cluster": dict(
        soc=SoCConfig.buffer_cluster, defect_rate=0.008, seed=11,
        backend="numpy", baseline_bit_accurate=False,
    ),
    "case_study_hetero": dict(
        soc=lambda: case_study_soc(memories=3), defect_rate=0.004, seed=1,
        backend="numpy", baseline_bit_accurate=False,
    ),
    "small_bit_accurate": dict(
        soc=small_soc, defect_rate=0.05, seed=5,
        backend="numpy", baseline_bit_accurate=True,
    ),
}


def run_canonical(name: str) -> CampaignReport:
    config = CAMPAIGNS[name]
    campaign = DiagnosisCampaign(
        config["soc"](),
        defect_rate=config["defect_rate"],
        seed=config["seed"],
        backend=config["backend"],
        baseline_bit_accurate=config["baseline_bit_accurate"],
    )
    return campaign.run(include_baseline=True, repair=True)


def campaign_to_json(report: CampaignReport) -> dict:
    """Stable, human-diffable JSON rendering of a campaign report."""
    proposed = report.proposed
    baseline = report.baseline
    repair = report.repair
    return {
        "soc_name": report.soc_name,
        "injected_faults": report.injected_faults,
        "localization_rate": report.localization_rate,
        "verification_passed": report.verification_passed,
        "reduction_factor": report.reduction_factor,
        "proposed": {
            "algorithm_name": proposed.algorithm_name,
            "controller_words": proposed.controller_words,
            "controller_bits": proposed.controller_bits,
            "period_ns": proposed.period_ns,
            "cycles": proposed.cycles,
            "pause_ns": proposed.pause_ns,
            "deliveries": proposed.deliveries,
            "nwrc_ops": proposed.nwrc_ops,
            "time_ns": proposed.time_ns,
            "failures": {
                name: [record.to_dict() for record in records]
                for name, records in sorted(proposed.failures.items())
            },
        },
        "baseline": {
            "iterations": baseline.iterations,
            "include_drf": baseline.include_drf,
            "controller_words": baseline.controller_words,
            "controller_bits": baseline.controller_bits,
            "period_ns": baseline.period_ns,
            "cycles": baseline.cycles,
            "pause_ns": baseline.pause_ns,
            "time_ns": baseline.time_ns,
            "localized": [
                {
                    "memory_name": fault.memory_name,
                    "cell": [fault.cell.word, fault.cell.bit],
                    "iteration": fault.iteration,
                    "direction": fault.direction,
                    "fault_class": fault.fault_class,
                }
                for fault in baseline.localized
            ],
            "missed": [
                [name, fault.describe()] for name, fault in baseline.missed
            ],
        },
        "repair": {
            "repaired": {
                name: sorted(words) for name, words in sorted(repair.repaired.items())
            },
            "out_of_spares": {
                name: sorted(words)
                for name, words in sorted(repair.out_of_spares.items())
            },
            "detached_faults": repair.detached_faults,
            "fully_repaired": repair.fully_repaired,
        },
    }


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_matches_golden(name, update_golden):
    path = GOLDEN_DIR / f"{name}.json"
    actual = campaign_to_json(run_canonical(name))
    if update_golden:
        path.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"golden fixture {path.name} rewritten")
    assert path.exists(), (
        f"missing golden fixture {path}; run pytest with --update-golden"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert actual == expected


def test_goldens_are_nontrivial(update_golden):
    # Guard against vacuous goldens: the canonical campaigns must exercise
    # injection, baseline localization and repair.
    if update_golden:
        pytest.skip("fixtures being rewritten")
    reports = [
        json.loads((GOLDEN_DIR / f"{name}.json").read_text(encoding="utf-8"))
        for name in sorted(CAMPAIGNS)
    ]
    assert all(report["injected_faults"] > 0 for report in reports)
    assert any(report["baseline"]["localized"] for report in reports)
    assert any(report["repair"]["repaired"] for report in reports)
    assert any(
        report["baseline"]["iterations"] > 0 for report in reports
    )
