"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _walk_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


def _inherits_documentation(cls, method_name: str) -> bool:
    """Whether some base class documents the overridden method."""
    for base in cls.__mro__[1:]:
        base_method = base.__dict__.get(method_name)
        if base_method is not None and getattr(base_method, "__doc__", None):
            return True
    return False


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home module
        if inspect.isclass(item):
            if not item.__doc__:
                undocumented.append(f"class {name}")
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method) or method.__doc__:
                    continue
                if _inherits_documentation(item, method_name):
                    continue  # documented at the hook's definition site
                undocumented.append(f"method {name}.{method_name}")
        elif inspect.isfunction(item):
            if not item.__doc__:
                undocumented.append(f"function {name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {', '.join(undocumented)}"
    )
