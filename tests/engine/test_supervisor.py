"""Supervised chunk execution: dead workers, retries, deadlines, quarantine.

The regression that motivates this file: under ``multiprocessing.Pool``
a worker dying via ``os._exit`` mid-chunk hung the parent forever
(``imap_unordered`` never yields the lost task).  Every test that kills
or hangs workers therefore runs under a :func:`watchdog` alarm -- if the
supervisor regresses into a hang, the test fails loudly instead of
stalling the suite.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import signal
import time

import pytest

from repro.engine.fleet import FleetScheduler, FleetSpec, run_chunk, run_fleet
from repro.engine.supervisor import (
    ChunkExecutionError,
    ChunkFailure,
    ChunkRetryPolicy,
)
from repro.testing import ChaosChunkRunner, ChaosSpec

SPEC = FleetSpec(
    soc="case-study",
    memories=2,
    campaigns=6,
    defect_rate=0.004,
    master_seed=11,
    include_baseline=False,
    backend="reference",
)

#: Fast-but-real retry policy: a couple of retries, millisecond backoff.
RETRY = ChunkRetryPolicy(
    max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05
)

#: Every first attempt of every chunk dies hard; retries succeed.
CRASH_ONCE = ChaosSpec(seed=3, crash_rate=1.0, max_faults_per_chunk=1)

#: Every attempt of every chunk dies hard; nothing ever succeeds.
CRASH_ALWAYS = ChaosSpec(seed=3, crash_rate=1.0, max_faults_per_chunk=99)


@contextlib.contextmanager
def watchdog(seconds: int = 120):
    """Fail the test if the protected block stalls -- never hang the suite."""

    def _expired(signum, frame):
        raise AssertionError(
            f"watchdog expired: fleet hung for more than {seconds}s on a "
            f"dead worker"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _assert_no_orphaned_workers(before: set) -> None:
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leftover = {
            p for p in multiprocessing.active_children() if p not in before
        }
        if not leftover:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned supervised workers: {leftover}")


def _fail_campaign_three(spec, indices):
    if 3 in indices:
        raise RuntimeError("campaign three is poison")
    return run_chunk(spec, indices)


class TestRetryPolicy:
    def test_defaults_validate(self):
        policy = ChunkRetryPolicy()
        assert policy.max_attempts == 3
        assert policy.chunk_timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max_s": -1.0},
            {"jitter": -0.25},
            {"chunk_timeout_s": 0.0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChunkRetryPolicy(**kwargs)

    def test_delay_is_deterministic(self):
        policy = ChunkRetryPolicy()
        assert policy.delay_s(7, 3, 1) == policy.delay_s(7, 3, 1)

    def test_delay_grows_and_caps(self):
        policy = ChunkRetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.4,
            jitter=0.0,
        )
        delays = [policy.delay_s(0, 0, attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_bounded_and_chunk_dependent(self):
        policy = ChunkRetryPolicy(
            backoff_base_s=0.1, backoff_factor=1.0, jitter=0.5
        )
        delays = [policy.delay_s(7, chunk, 1) for chunk in range(8)]
        assert all(0.1 <= delay <= 0.15 for delay in delays)
        assert len(set(delays)) > 1

    def test_first_retry_is_attempt_one(self):
        with pytest.raises(ValueError):
            ChunkRetryPolicy().delay_s(0, 0, 0)


class TestFailureRecords:
    def test_block_entry_shape(self):
        failure = ChunkFailure(
            chunk_index=4,
            campaign_indices=(8, 9),
            error_kinds=("crash", "timeout"),
            details=("exit 113", "deadline"),
        )
        assert failure.block_entry() == {
            "chunk": 4,
            "campaigns": [8, 9],
            "error_kinds": ["crash", "timeout"],
        }

    def test_error_message_carries_attempt_history(self):
        failure = ChunkFailure(
            chunk_index=4,
            campaign_indices=(8, 9),
            error_kinds=("crash", "exception"),
            details=("worker exited with code 113", "ValueError: nope"),
        )
        error = ChunkExecutionError(failure)
        assert error.failure is failure
        message = str(error)
        assert "chunk 4 (campaigns 8..9) failed after 2 attempt(s)" in message
        assert "attempt 1 [crash] worker exited with code 113" in message
        assert "attempt 2 [exception] ValueError: nope" in message


class TestDeadWorkerDetection:
    """``os._exit`` mid-chunk must never hang the parent (regression)."""

    def test_run_survives_worker_death_and_matches_plain(self):
        plain = run_fleet(SPEC, workers=2, chunk_size=1)
        before = set(multiprocessing.active_children())
        with watchdog():
            chaotic = run_fleet(
                SPEC,
                workers=2,
                chunk_size=1,
                chunk_runner=ChaosChunkRunner(CRASH_ONCE),
                retry=RETRY,
            )
        _assert_no_orphaned_workers(before)
        assert chaotic.canonical_json() == plain.canonical_json()

    def test_run_raises_promptly_when_crashes_persist(self):
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=1,
            chunk_runner=ChaosChunkRunner(CRASH_ALWAYS),
            retry=ChunkRetryPolicy(max_attempts=2, backoff_base_s=0.01),
        )
        with watchdog():
            with pytest.raises(ChunkExecutionError) as excinfo:
                scheduler.run()
        failure = excinfo.value.failure
        assert failure.error_kinds == ("crash", "crash")
        assert "worker exited with code 113" in failure.details[0]

    def test_stream_survives_worker_death(self):
        plain = list(FleetScheduler(SPEC, workers=2, chunk_size=1).stream())
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=1,
            chunk_runner=ChaosChunkRunner(CRASH_ONCE),
            retry=RETRY,
        )
        with watchdog():
            chaotic = list(scheduler.stream())
        assert chaotic == plain

    def test_stream_raises_promptly_when_crashes_persist(self):
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=1,
            chunk_runner=ChaosChunkRunner(CRASH_ALWAYS),
            retry=ChunkRetryPolicy(max_attempts=1),
        )
        with watchdog():
            with pytest.raises(ChunkExecutionError):
                list(scheduler.stream())

    def test_early_stream_close_reaps_chaotic_workers(self):
        before = set(multiprocessing.active_children())
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=1,
            chunk_runner=ChaosChunkRunner(CRASH_ONCE),
            retry=RETRY,
        )
        with watchdog():
            stream = scheduler.stream()
            next(stream)
            stream.close()
        _assert_no_orphaned_workers(before)


class TestDeadlines:
    def test_hung_worker_is_terminated_and_retried(self):
        plain = run_fleet(SPEC, workers=2, chunk_size=1)
        hang = ChaosSpec(
            seed=5, hang_rate=1.0, hang_s=60.0, max_faults_per_chunk=1
        )
        with watchdog():
            chaotic = run_fleet(
                SPEC,
                workers=2,
                chunk_size=1,
                chunk_runner=ChaosChunkRunner(hang),
                # The deadline must beat the injected 60s hang but leave a
                # real chunk plenty of room, so the retry always lands.
                retry=ChunkRetryPolicy(
                    max_attempts=2, backoff_base_s=0.01, chunk_timeout_s=3.0
                ),
            )
        assert chaotic.canonical_json() == plain.canonical_json()

    def test_timeout_kind_reported_when_attempts_exhaust(self):
        hang = ChaosSpec(
            seed=5, hang_rate=1.0, hang_s=60.0, max_faults_per_chunk=99
        )
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=3,
            chunk_runner=ChaosChunkRunner(hang),
            retry=ChunkRetryPolicy(max_attempts=1, chunk_timeout_s=0.5),
        )
        with watchdog():
            with pytest.raises(ChunkExecutionError) as excinfo:
                scheduler.run()
        assert excinfo.value.failure.error_kinds == ("timeout",)


class TestQuarantine:
    def test_poison_chunk_is_quarantined_and_reported(self):
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=1,
            chunk_runner=_fail_campaign_three,
            retry=ChunkRetryPolicy(max_attempts=2, backoff_base_s=0.01),
            on_chunk_failure="quarantine",
        )
        with watchdog():
            report = scheduler.run()
        assert report.campaigns == SPEC.campaigns - 1
        assert report.failures == [
            {
                "chunk": 3,
                "campaigns": [3],
                "error_kinds": ["exception", "exception"],
            }
        ]
        assert [f.chunk_index for f in scheduler.last_failures] == [3]
        assert "failures" in report.deterministic_dict()

    def test_strict_mode_raises_with_original_message(self):
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=1,
            chunk_runner=_fail_campaign_three,
            retry=ChunkRetryPolicy(max_attempts=2, backoff_base_s=0.01),
        )
        with watchdog():
            with pytest.raises(RuntimeError, match="campaign three is poison"):
                scheduler.run()

    def test_inline_quarantine_matches_pooled(self):
        pooled = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=1,
            chunk_runner=_fail_campaign_three,
            retry=ChunkRetryPolicy(max_attempts=2, backoff_base_s=0.01),
            on_chunk_failure="quarantine",
        )
        inline = FleetScheduler(
            SPEC,
            workers=1,
            chunk_size=1,
            chunk_runner=_fail_campaign_three,
            retry=ChunkRetryPolicy(max_attempts=2, backoff_base_s=0.01),
            on_chunk_failure="quarantine",
        )
        with watchdog():
            assert (
                pooled.run().canonical_json() == inline.run().canonical_json()
            )

    def test_inline_strict_raises_chunk_execution_error(self):
        scheduler = FleetScheduler(
            SPEC,
            workers=1,
            chunk_size=1,
            chunk_runner=_fail_campaign_three,
            retry=ChunkRetryPolicy(max_attempts=2, backoff_base_s=0.01),
        )
        with pytest.raises(ChunkExecutionError, match="campaign three"):
            scheduler.run()

    def test_unknown_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="on_chunk_failure"):
            FleetScheduler(SPEC, on_chunk_failure="ignore")


class TestEarlyPoolEnd:
    def test_error_names_head_of_line_chunk_and_counts(self, monkeypatch):
        def no_results(self, pending, chunks):
            return
            yield  # pragma: no cover -- makes this a (closable) generator

        monkeypatch.setattr(FleetScheduler, "_execute_pending", no_results)
        scheduler = FleetScheduler(SPEC, workers=2, chunk_size=1)
        with pytest.raises(
            RuntimeError,
            match=r"worker pool ended early: completed 0 of 6 expected chunk "
            r"results; head-of-line chunk 0 \(campaigns 0\.\.0\)",
        ):
            scheduler.run()


class TestStartMethodOverride:
    def test_env_override_selects_spawn(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert FleetScheduler._pool_context().get_start_method() == "spawn"

    def test_unsupported_method_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "bogus")
        with pytest.raises(ValueError, match="REPRO_START_METHOD"):
            FleetScheduler._pool_context()

    def test_spawn_run_matches_inline(self, monkeypatch):
        spec = FleetSpec(
            memories=2,
            campaigns=2,
            defect_rate=0.004,
            master_seed=11,
            include_baseline=False,
            backend="reference",
        )
        inline = run_fleet(spec, workers=1, chunk_size=1)
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        with watchdog():
            spawned = run_fleet(spec, workers=2, chunk_size=1)
        assert spawned.canonical_json() == inline.canonical_json()
