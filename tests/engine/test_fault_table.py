"""Compiled fault table: lowering protocol, partition and round-trips.

The contract under test: for every lowerable fault class, evaluating the
lowered table representation over a geometry bucket produces *bit-identical*
sessions to the behavioural object replay (the reference scheme), on
randomized populations -- dense ones included -- while non-lowerable
faults (legacy-stream intermittent faults, intra-word coupling) stay on
the exact behavioural lane via the taint partition.  The stateful-but-
analytic kinds (counter-based intermittent/SEU, retention decay) lower
too, draw counters and decay clocks evaluated in closed form.

The plan-cache tests pin the second half of the dense-regime work: session
element plans are memoized across campaigns sharing a (march, geometry)
pair, with the hit rate surfaced through ``FleetReport``.
"""

from __future__ import annotations

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.engine.fault_table import lower_bucket, partition_faults
from repro.engine.session import (
    plan_cache_stats,
    reset_plan_cache,
    run_session,
    session_step_plans,
)
from repro.faults.base import KIND_CF_ST, KIND_DRF, KIND_INT_READ, KIND_STUCK
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.dynamic import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
    WriteDisturbFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.intermittent import IntermittentReadFault, SoftErrorUpsetFault
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.faults.weak_cell import WeakCellDefect
from repro.march.library import march_c_minus, march_cw_nw, march_ss
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.rng import make_rng


def cell_picker(geometry, rng):
    """Draw distinct cells of ``geometry`` on demand."""
    order = rng.permutation(geometry.cells)
    cursor = iter(order)

    def pick() -> CellRef:
        return geometry.cell_at(int(next(cursor)))

    return pick


def other_word_cell(geometry, cell, rng) -> CellRef:
    word = int(rng.integers(geometry.words - 1))
    if word >= cell.word:
        word += 1
    return CellRef(word, int(rng.integers(geometry.bits)))


#: label -> factory(geometry, pick, rng) for each lowerable class.
LOWERABLE_CLASSES = {
    "stuck-at": lambda g, pick, rng: StuckAtFault(pick(), int(rng.integers(2))),
    "transition": lambda g, pick, rng: TransitionFault(
        pick(), bool(rng.integers(2))
    ),
    "incorrect-read": lambda g, pick, rng: IncorrectReadFault(pick()),
    "read-destructive": lambda g, pick, rng: ReadDestructiveFault(pick()),
    "deceptive-read-destructive": lambda g, pick, rng: (
        DeceptiveReadDestructiveFault(pick())
    ),
    "write-disturb": lambda g, pick, rng: WriteDisturbFault(
        pick(), [None, 0, 1][int(rng.integers(3))]
    ),
    "weak-cell": lambda g, pick, rng: WeakCellDefect(pick(), int(rng.integers(2))),
    "cf-inversion": lambda g, pick, rng: InversionCouplingFault(
        other_word_cell(g, c := pick(), rng), c, bool(rng.integers(2))
    ),
    "cf-idempotent": lambda g, pick, rng: IdempotentCouplingFault(
        other_word_cell(g, c := pick(), rng),
        c,
        bool(rng.integers(2)),
        int(rng.integers(2)),
    ),
    "cf-state": lambda g, pick, rng: StateCouplingFault(
        other_word_cell(g, c := pick(), rng),
        c,
        int(rng.integers(2)),
        int(rng.integers(2)),
        bool(rng.integers(2)),
    ),
    "intermittent-read": lambda g, pick, rng: IntermittentReadFault(
        pick(), float(rng.uniform(0.05, 0.6)), seed=int(rng.integers(2**31))
    ),
    "soft-error": lambda g, pick, rng: SoftErrorUpsetFault(
        pick(), float(rng.uniform(0.05, 0.6)), seed=int(rng.integers(2**31))
    ),
    # Retention times short enough that decay fires mid-march on these
    # small geometries (accesses land every few tens of ns).
    "retention": lambda g, pick, rng: DataRetentionFault(
        pick(), int(rng.integers(2)), retention_ns=float(rng.integers(5, 400) * 10)
    ),
}

ALGORITHMS = (march_cw_nw, march_ss, march_c_minus)


def bucket_bank(seed: int) -> MemoryBank:
    """A bank whose geometries force stacking *and* sweep wrap-around."""
    rng = make_rng(seed)
    words, bits = int(rng.integers(4, 20)), int(rng.integers(2, 10))
    shapes = [(words, bits)] * int(rng.integers(2, 4))
    # A larger outlier memory widens the controller span so the bucket's
    # sweep wraps (partial trailing block) half of the time.
    if rng.integers(2):
        shapes.append((words * 2 + 1, bits))
    return MemoryBank(
        [SRAM(MemoryGeometry(w, b, f"m{i}")) for i, (w, b) in enumerate(shapes)]
    )


def inject_class(bank, label, seed) -> None:
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        rng = make_rng(seed * 1000 + index)
        pick = cell_picker(memory.geometry, rng)
        count = max(1, memory.geometry.cells // 4)
        faults = []
        for _ in range(count):
            try:
                faults.append(LOWERABLE_CLASSES[label](memory.geometry, pick, rng))
            except StopIteration:
                break
        injector.inject(memory, faults)


def assert_sessions_identical(label, algorithm, seed, inject):
    banks = {}
    for backend in ("reference", "batched"):
        bank = bucket_bank(seed)
        inject(bank)
        banks[backend] = bank
    reference = FastDiagnosisScheme(
        banks["reference"], algorithm_factory=algorithm
    ).diagnose()
    batched = run_session(
        FastDiagnosisScheme(banks["batched"], algorithm_factory=algorithm),
        backend="batched",
    )
    assert batched.failures == reference.failures, label
    assert batched.cycles == reference.cycles, label
    assert batched.time_ns == reference.time_ns, label
    for ref_mem, fast_mem in zip(banks["reference"], banks["batched"]):
        assert fast_mem.dump() == ref_mem.dump(), (label, ref_mem.name)
        assert fast_mem.timebase.cycles == ref_mem.timebase.cycles, label


class TestLoweringProtocol:
    def test_lowerable_classes_opt_in(self):
        cell = CellRef(1, 0)
        assert StuckAtFault(cell, 1).vector_lowerable()
        assert TransitionFault(cell, True).vector_lowerable()
        assert IncorrectReadFault(cell).vector_lowerable()
        assert ReadDestructiveFault(cell).vector_lowerable()
        assert DeceptiveReadDestructiveFault(cell).vector_lowerable()
        assert WriteDisturbFault(cell).vector_lowerable()
        assert WeakCellDefect(cell).vector_lowerable()

    def test_stateful_analytic_classes_lower(self):
        cell = CellRef(1, 0)
        assert DataRetentionFault(cell, 1).vector_lowerable()
        assert IntermittentReadFault(cell, 0.5).vector_lowerable()
        assert SoftErrorUpsetFault(cell, 0.5).vector_lowerable()

    def test_legacy_stream_stays_behavioural(self):
        cell = CellRef(1, 0)
        legacy_read = IntermittentReadFault(cell, 0.5, legacy_stream=True)
        legacy_seu = SoftErrorUpsetFault(cell, 0.5, legacy_stream=True)
        assert not legacy_read.vector_lowerable()
        assert not legacy_seu.vector_lowerable()

    def test_coupling_lowerable_only_inter_word(self):
        inter = InversionCouplingFault(CellRef(0, 1), CellRef(2, 1))
        intra = InversionCouplingFault(CellRef(0, 1), CellRef(0, 2))
        assert inter.vector_lowerable()
        assert not intra.vector_lowerable()

    def test_lower_payloads(self):
        stuck = StuckAtFault(CellRef(3, 2), 1).lower()
        assert (stuck.kind, stuck.victim, stuck.value) == (
            KIND_STUCK,
            CellRef(3, 2),
            1,
        )
        cf = StateCouplingFault(
            CellRef(0, 1), CellRef(2, 3), aggressor_state=0, forced_value=1,
            affects_write=False,
        ).lower()
        assert cf.kind == KIND_CF_ST
        assert cf.aggressor == CellRef(0, 1)
        assert (cf.aggressor_state, cf.value, cf.affects_write) == (0, 1, False)
        retention = DataRetentionFault(CellRef(1, 2), 1, retention_ns=250.0)
        drf = retention.lower()
        assert (drf.kind, drf.value, drf.retention_ns) == (KIND_DRF, 1, 250.0)
        assert drf.written_at_ns is None
        assert drf.source is retention
        fault = IntermittentReadFault(CellRef(0, 1), 0.25, seed=7)
        fault._upset()  # consume one draw: counter_base must carry it
        low = fault.lower()
        assert (low.kind, low.probability, low.seed, low.counter_base) == (
            KIND_INT_READ,
            0.25,
            7,
            1,
        )
        assert low.source is fault

    def test_base_fault_defaults_conservative(self):
        from repro.faults.base import Fault

        fault = Fault()
        assert not fault.vector_lowerable()
        with pytest.raises(NotImplementedError):
            fault.lower()


class TestPartition:
    @staticmethod
    def memory(words=8, bits=4) -> SRAM:
        return SRAM(MemoryGeometry(words, bits, "part"))

    def test_pure_lowerable_population_has_no_replay_words(self):
        memory = self.memory()
        FaultInjector().inject(
            memory,
            [StuckAtFault(CellRef(1, 0), 1), TransitionFault(CellRef(5, 2), False)],
        )
        lowered, tainted = partition_faults(memory)
        assert {spec.victim.word for spec in lowered} == {1, 5}
        assert tainted == set()

    def test_non_lowerable_fault_taints_its_word(self):
        memory = self.memory()
        FaultInjector().inject(
            memory,
            [
                IntermittentReadFault(CellRef(2, 1), 0.5, legacy_stream=True),
                StuckAtFault(CellRef(3, 0), 0),
            ],
        )
        lowered, tainted = partition_faults(memory)
        assert tainted == {2}
        assert {spec.victim.word for spec in lowered} == {3}

    def test_taint_propagates_across_coupling_edges(self):
        # A legacy-stream fault on word 4 (the coupling's aggressor word)
        # must drag the victim word 6 onto the behavioural lane with it --
        # and vice versa, a tainted victim word pins its aggressor word.
        memory = self.memory()
        FaultInjector().inject(
            memory,
            [
                SoftErrorUpsetFault(CellRef(4, 1), 0.5, legacy_stream=True),
                InversionCouplingFault(CellRef(4, 2), CellRef(6, 0)),
            ],
        )
        lowered, tainted = partition_faults(memory)
        assert tainted == {4, 6}
        assert lowered == []

    def test_taint_propagates_transitively(self):
        memory = self.memory()
        FaultInjector().inject(
            memory,
            [
                IntermittentReadFault(CellRef(0, 0), 0.5, legacy_stream=True),
                IdempotentCouplingFault(CellRef(0, 1), CellRef(2, 1)),
                StateCouplingFault(CellRef(2, 3), CellRef(7, 0)),
                StuckAtFault(CellRef(5, 1), 1),
            ],
        )
        lowered, tainted = partition_faults(memory)
        assert tainted == {0, 2, 7}
        assert {spec.victim.word for spec in lowered} == {5}

    def test_shared_cell_keeps_both_faults_behavioural(self):
        memory = self.memory()
        FaultInjector().inject(
            memory,
            [StuckAtFault(CellRef(1, 2), 1), TransitionFault(CellRef(1, 2), True)],
        )
        lowered, tainted = partition_faults(memory)
        assert lowered == []
        assert tainted == {1}

    def test_intra_word_coupling_stays_behavioural(self):
        memory = self.memory()
        FaultInjector().inject(
            memory, [InversionCouplingFault(CellRef(3, 0), CellRef(3, 2))]
        )
        lowered, tainted = partition_faults(memory)
        assert lowered == []
        assert tainted == {3}

    def test_lower_bucket_partitions_three_ways(self):
        memories = [self.memory(), self.memory()]
        FaultInjector().inject(
            memories[0],
            [
                StuckAtFault(CellRef(1, 0), 1),
                IntermittentReadFault(CellRef(2, 0), 0.5, legacy_stream=True),
                # Untainted inter-word coupling: aggressor word 6 carries
                # only the watch and stays on the *clean* lane.
                InversionCouplingFault(CellRef(6, 1), CellRef(4, 1)),
            ],
        )
        lanes = lower_bucket(memories)
        assert lanes.table is not None
        assert lanes.replay_masks[0].nonzero()[0].tolist() == [2]
        assert lanes.table_masks[0].nonzero()[0].tolist() == [1, 4]
        assert lanes.clean_masks[0, 6]
        assert not lanes.replay_masks[1].any()
        assert not lanes.table_masks[1].any()
        assert lanes.vector_masks[0].sum() == 7
        assert lanes.vector_masks[1].all()


@pytest.mark.parametrize("label", sorted(LOWERABLE_CLASSES))
@pytest.mark.parametrize("case", range(3))
class TestLoweredRoundTrip:
    """Lowered table evaluation == behavioural object replay, per class."""

    def test_class_population_round_trips(self, label, case):
        algorithm = ALGORITHMS[case % len(ALGORITHMS)]
        assert_sessions_identical(
            label,
            algorithm,
            seed=0xFA0 + case * 17,
            inject=lambda bank: inject_class(bank, label, 0xFA0 + case),
        )


class TestMixedRoundTrip:
    """All lowerable classes together, plus behavioural-lane neighbours."""

    @pytest.mark.parametrize("case", range(4))
    def test_mixed_population_round_trips(self, case):
        def inject(bank):
            for label in sorted(LOWERABLE_CLASSES):
                inject_class(bank, label, 0xABC + case)
            injector = FaultInjector()
            for index, memory in enumerate(bank):
                rng = make_rng(0xDEF + case * 100 + index)
                pick = cell_picker(memory.geometry, rng)
                injector.inject(
                    memory,
                    [
                        DataRetentionFault(
                            pick(),
                            int(rng.integers(2)),
                            retention_ns=float(rng.integers(5, 200) * 10),
                        ),
                        IntermittentReadFault(pick(), 0.4, seed=case),
                        # A legacy-stream fault keeps the behavioural
                        # replay lane exercised alongside the table lane.
                        SoftErrorUpsetFault(
                            pick(), 0.3, seed=case + 7, legacy_stream=True
                        ),
                    ],
                )

        assert_sessions_identical(
            "mixed", ALGORITHMS[case % len(ALGORITHMS)], 0x31 + case, inject
        )


class TestPlanCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        reset_plan_cache()
        yield
        reset_plan_cache()

    @staticmethod
    def scheme(words=6, bits=4, count=2) -> FastDiagnosisScheme:
        bank = MemoryBank(
            [SRAM(MemoryGeometry(words, bits, f"c{i}")) for i in range(count)]
        )
        return FastDiagnosisScheme(bank)

    def test_same_march_and_geometry_hits(self):
        scheme = self.scheme()
        algorithm = scheme.algorithm_factory(scheme.controller_bits)
        first = session_step_plans(scheme, scheme.bank[0], algorithm)
        assert plan_cache_stats() == (0, 1)
        # Same widths, different session, different algorithm *instance*.
        other = self.scheme()
        second = session_step_plans(
            other, other.bank[0], other.algorithm_factory(other.controller_bits)
        )
        assert plan_cache_stats() == (1, 1)
        assert second is first

    def test_distinct_widths_miss(self):
        scheme = self.scheme()
        algorithm = scheme.algorithm_factory(scheme.controller_bits)
        session_step_plans(scheme, scheme.bank[0], algorithm)
        narrow = self.scheme(bits=3)
        session_step_plans(
            narrow, narrow.bank[0], narrow.algorithm_factory(narrow.controller_bits)
        )
        assert plan_cache_stats() == (0, 2)

    def test_delivery_order_is_part_of_the_key(self):
        msb = self.scheme()
        session_step_plans(
            msb, msb.bank[0], msb.algorithm_factory(msb.controller_bits)
        )
        lsb = self.scheme()
        lsb.msb_first = False
        session_step_plans(
            lsb, lsb.bank[0], lsb.algorithm_factory(lsb.controller_bits)
        )
        assert plan_cache_stats() == (0, 2)

    def test_lru_bound(self):
        from repro.engine import session as session_module

        for bits in range(2, 2 + session_module._PLAN_CACHE_MAX + 10):
            scheme = self.scheme(bits=bits, count=1)
            session_step_plans(
                scheme,
                scheme.bank[0],
                scheme.algorithm_factory(scheme.controller_bits),
            )
        assert len(session_module._PLAN_CACHE) == session_module._PLAN_CACHE_MAX

    def test_fleet_report_surfaces_hit_rate(self):
        from repro.engine.fleet import FleetSpec, run_fleet

        spec = FleetSpec(memories=2, campaigns=3, defect_rate=0.004)
        report = run_fleet(spec, workers=1)
        assert report.plan_cache_misses >= 1
        assert report.plan_cache_hits > 0  # later campaigns reuse plans
        assert 0.0 < report.plan_cache_hit_rate < 1.0
        payload = report.to_json_dict()
        assert payload["plan_cache"]["hits"] == report.plan_cache_hits
        assert payload["plan_cache"]["hit_rate"] == report.plan_cache_hit_rate
        assert "plan_cache" not in report.deterministic_dict()
        assert any("plan cache" in line for line in report.summary_lines())
