"""Seeded differential fuzz harness: reference vs numpy, both schemes.

Each fuzz case draws a random (geometry, fault population, march
algorithm) triple from a seeded generator and asserts complete
equivalence between the pure-Python reference path and the vectorized
numpy path at three levels:

* raw march runs (:mod:`repro.engine.backends`) -- failure records,
  cycle/time accounting, final memory state;
* proposed-scheme sessions (:mod:`repro.engine.session`) -- full
  :class:`~repro.core.report.ProposedReport` plus end state and clocking;
* baseline sessions (:mod:`repro.engine.baseline_session`, bit-accurate
  iterate-repair) -- iteration count, localization records, missed
  faults, end state and clocking.

A second suite layers *intermittent/soft-error* populations
(:mod:`repro.faults.intermittent`) on top of the manufacturing faults:
per-access upset draws come from each fault's private deterministic
stream, and the vectorized paths replay fault-hooked words in exact
reference order, so the numpy fast path must still match the pure-Python
reference bit-exactly (there is no delegation for cell-level faults; the
fast paths only delegate for whole-session features such as tracing or
decoder faults, which these populations never draw).

The generator is deterministic per case index, so failures reproduce
exactly; widen ``CASES`` locally to fuzz harder.
"""

from __future__ import annotations

import pytest

from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.backends import ReferenceBackend, get_backend
from repro.engine.baseline_session import run_baseline_session
from repro.engine.session import run_session
from repro.faults.injector import FaultInjector
from repro.faults.intermittent import sample_intermittent_population
from repro.faults.population import sample_population
from repro.march.library import (
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
    march_ss,
    march_with_retention_pauses,
    mats_plus,
)
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.rng import make_rng

ALGORITHMS = [
    mats_plus,
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
    march_ss,
    march_with_retention_pauses,
]

#: Number of fuzz cases per suite run (each is an independent seed).
CASES = 10


def draw_case(case_index: int):
    """One random (bank geometries, defect rate, algorithm) triple."""
    rng = make_rng(0xD1FF + case_index)
    memories = int(rng.integers(1, 4))
    geometries = [
        MemoryGeometry(
            int(rng.integers(3, 25)), int(rng.integers(2, 11)), f"fuzz_{i}"
        )
        for i in range(memories)
    ]
    defect_rate = float(rng.uniform(0.0, 0.08))
    algorithm = ALGORITHMS[int(rng.integers(len(ALGORITHMS)))]
    seed = int(rng.integers(2**31))
    return geometries, defect_rate, algorithm, seed


def build_bank(geometries, defect_rate, seed, intermittent=None):
    """A seeded faulty bank; ``intermittent=(rate, upset_p)`` layers the
    per-access soft-error population on top of the manufacturing one."""
    bank = MemoryBank([SRAM(geometry) for geometry in geometries])
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, defect_rate, rng=seed + index)
        injector.inject(memory, population.faults)
        if intermittent is not None:
            rate, upset_probability = intermittent
            injector.inject(
                memory,
                list(
                    sample_intermittent_population(
                        memory.geometry, rate, upset_probability, seed=seed + index
                    )
                ),
            )
    return bank, injector


def assert_states_equal(reference_bank, fast_bank):
    for reference_memory, fast_memory in zip(reference_bank, fast_bank):
        assert fast_memory.dump() == reference_memory.dump()
        assert fast_memory.timebase.cycles == reference_memory.timebase.cycles


def draw_intermittent_case(case_index: int):
    """Like :func:`draw_case`, plus an intermittent/soft-error layer."""
    geometries, defect_rate, algorithm, seed = draw_case(case_index)
    rng = make_rng(0x50F7 + case_index)
    intermittent = (
        float(rng.uniform(0.01, 0.15)),  # fraction of cells upset-prone
        float(rng.uniform(0.05, 0.9)),  # per-access upset probability
    )
    return geometries, defect_rate, algorithm, seed, intermittent


@pytest.mark.parametrize("case_index", range(CASES))
class TestDifferentialFuzz:
    def test_raw_march_backend(self, case_index):
        geometries, defect_rate, algorithm, seed = draw_case(case_index)
        reference_bank, _ = build_bank(geometries, defect_rate, seed)
        fast_bank, _ = build_bank(geometries, defect_rate, seed)
        for reference_memory, fast_memory in zip(reference_bank, fast_bank):
            reference = ReferenceBackend().run(
                reference_memory, algorithm(reference_memory.bits)
            )
            fast = get_backend("numpy").run(fast_memory, algorithm(fast_memory.bits))
            assert fast.failures == reference.failures
            assert fast.cycles == reference.cycles
            assert fast.elapsed_ns == reference.elapsed_ns
        assert_states_equal(reference_bank, fast_bank)

    def test_proposed_session(self, case_index):
        geometries, defect_rate, algorithm, seed = draw_case(case_index)
        reference_bank, _ = build_bank(geometries, defect_rate, seed)
        fast_bank, _ = build_bank(geometries, defect_rate, seed)
        reference = FastDiagnosisScheme(
            reference_bank, algorithm_factory=algorithm
        ).diagnose()
        fast = run_session(
            FastDiagnosisScheme(fast_bank, algorithm_factory=algorithm),
            backend="numpy",
        )
        assert fast.failures == reference.failures
        assert fast.cycles == reference.cycles
        assert fast.pause_ns == reference.pause_ns
        assert fast.deliveries == reference.deliveries
        assert fast.nwrc_ops == reference.nwrc_ops
        assert fast.time_ns == reference.time_ns
        assert_states_equal(reference_bank, fast_bank)

    def test_baseline_session(self, case_index):
        geometries, defect_rate, _, seed = draw_case(case_index)
        reference_bank, reference_injector = build_bank(geometries, defect_rate, seed)
        fast_bank, fast_injector = build_bank(geometries, defect_rate, seed)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert fast.iterations == reference.iterations
        assert fast.localized == reference.localized
        assert [(n, f.describe()) for n, f in fast.missed] == [
            (n, f.describe()) for n, f in reference.missed
        ]
        assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)


@pytest.mark.parametrize("case_index", range(CASES))
class TestDifferentialFuzzIntermittent:
    """The same three equivalence levels over soft-error populations.

    Intermittent hooks draw from per-fault deterministic streams, so the
    fast paths -- which replay every fault-hooked word behaviourally in
    exact reference order -- must reproduce the reference's stochastic
    behaviour draw for draw.
    """

    def test_raw_march_backend(self, case_index):
        geometries, defect_rate, algorithm, seed, layer = draw_intermittent_case(
            case_index
        )
        reference_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        fast_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        for reference_memory, fast_memory in zip(reference_bank, fast_bank):
            reference = ReferenceBackend().run(
                reference_memory, algorithm(reference_memory.bits)
            )
            fast = get_backend("numpy").run(fast_memory, algorithm(fast_memory.bits))
            assert fast.failures == reference.failures
            assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)

    def test_proposed_session(self, case_index):
        geometries, defect_rate, algorithm, seed, layer = draw_intermittent_case(
            case_index
        )
        reference_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        fast_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        reference = FastDiagnosisScheme(
            reference_bank, algorithm_factory=algorithm
        ).diagnose()
        fast = run_session(
            FastDiagnosisScheme(fast_bank, algorithm_factory=algorithm),
            backend="numpy",
        )
        assert fast.failures == reference.failures
        assert fast.cycles == reference.cycles
        assert fast.time_ns == reference.time_ns
        assert_states_equal(reference_bank, fast_bank)

    def test_baseline_session(self, case_index):
        geometries, defect_rate, _, seed, layer = draw_intermittent_case(case_index)
        reference_bank, reference_injector = build_bank(
            geometries, defect_rate, seed, layer
        )
        fast_bank, fast_injector = build_bank(geometries, defect_rate, seed, layer)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert fast.iterations == reference.iterations
        assert fast.localized == reference.localized
        assert [(n, f.describe()) for n, f in fast.missed] == [
            (n, f.describe()) for n, f in reference.missed
        ]
        assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)
