"""Seeded differential fuzz harness: reference vs numpy, both schemes.

Each fuzz case draws a random (geometry, fault population, march
algorithm) triple from a seeded generator and asserts complete
equivalence between the pure-Python reference path and the vectorized
numpy path at three levels:

* raw march runs (:mod:`repro.engine.backends`) -- failure records,
  cycle/time accounting, final memory state;
* proposed-scheme sessions (:mod:`repro.engine.session`) -- full
  :class:`~repro.core.report.ProposedReport` plus end state and clocking;
* baseline sessions (:mod:`repro.engine.baseline_session`, bit-accurate
  iterate-repair) -- iteration count, localization records, missed
  faults, end state and clocking.

A third axis runs the *fleet-batched* tier through the same matrix:
banks drawn with deliberately duplicated geometries (so the geometry
buckets actually stack), asserting ``reference == numpy == batched`` on
fault maps, cycle accounting, end state, baseline iterate-repair output
(k-counts and localization records) and scenario/fleet aggregates.

A second suite layers *intermittent/soft-error* populations
(:mod:`repro.faults.intermittent`) on top of the manufacturing faults:
per-access upset draws come from each fault's private deterministic
stream, and the vectorized paths replay fault-hooked words in exact
reference order, so the numpy fast path must still match the pure-Python
reference bit-exactly (there is no delegation for cell-level faults; the
fast paths only delegate for whole-session features such as tracing or
decoder faults, which these populations never draw).

A fourth axis (:class:`TestDifferentialFuzzDense`) drives the *dense*
diagnostic regimes (0.5-12 % defect rates plus a read/write-disturb +
weak-cell layer and a mandatory intermittent layer), so the compiled
fault table's mixed lowerable/behavioural partition is fuzzed with every
table-lowerable class present.

The generator is deterministic per case index, so failures reproduce
exactly; widen ``CASES`` locally to fuzz harder.
"""

from __future__ import annotations

import pytest

from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.backends import ReferenceBackend, get_backend
from repro.engine.baseline_session import run_baseline_session
from repro.engine.session import run_session
from repro.faults.injector import FaultInjector
from repro.faults.intermittent import sample_intermittent_population
from repro.faults.population import sample_population
from repro.march.library import (
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
    march_ss,
    march_with_retention_pauses,
    mats_plus,
)
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.rng import make_rng

ALGORITHMS = [
    mats_plus,
    march_c_minus,
    march_c_nw,
    march_cw,
    march_cw_nw,
    march_ss,
    march_with_retention_pauses,
]

#: Number of fuzz cases per suite run (each is an independent seed).
CASES = 10


def draw_case(case_index: int):
    """One random (bank geometries, defect rate, algorithm) triple."""
    rng = make_rng(0xD1FF + case_index)
    memories = int(rng.integers(1, 4))
    geometries = [
        MemoryGeometry(
            int(rng.integers(3, 25)), int(rng.integers(2, 11)), f"fuzz_{i}"
        )
        for i in range(memories)
    ]
    defect_rate = float(rng.uniform(0.0, 0.08))
    algorithm = ALGORITHMS[int(rng.integers(len(ALGORITHMS)))]
    seed = int(rng.integers(2**31))
    return geometries, defect_rate, algorithm, seed


def sample_dynamic_population(geometry, rate, rng):
    """Seeded read/write-disturb and weak-cell faults (table classes the
    manufacturing sampler never draws)."""
    from repro.faults.dynamic import (
        DeceptiveReadDestructiveFault,
        IncorrectReadFault,
        ReadDestructiveFault,
        WriteDisturbFault,
    )
    from repro.faults.weak_cell import WeakCellDefect

    count = max(1, int(geometry.cells * rate))
    cells = rng.choice(geometry.cells, size=min(count, geometry.cells), replace=False)
    classes = (
        lambda cell: IncorrectReadFault(cell),
        lambda cell: ReadDestructiveFault(cell),
        lambda cell: DeceptiveReadDestructiveFault(cell),
        lambda cell: WriteDisturbFault(cell, [None, 0, 1][int(rng.integers(3))]),
        lambda cell: WeakCellDefect(cell, int(rng.integers(2))),
    )
    return [
        classes[int(rng.integers(len(classes)))](geometry.cell_at(int(index)))
        for index in cells
    ]


def build_bank(geometries, defect_rate, seed, intermittent=None, dynamic_rate=None):
    """A seeded faulty bank; ``intermittent=(rate, upset_p)`` layers the
    per-access soft-error population on top of the manufacturing one and
    ``dynamic_rate`` a read/write-disturb + weak-cell population."""
    bank = MemoryBank([SRAM(geometry) for geometry in geometries])
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, defect_rate, rng=seed + index)
        injector.inject(memory, population.faults)
        if dynamic_rate is not None:
            injector.inject(
                memory,
                sample_dynamic_population(
                    memory.geometry, dynamic_rate, make_rng(seed + 31 * index)
                ),
            )
        if intermittent is not None:
            rate, upset_probability = intermittent
            injector.inject(
                memory,
                list(
                    sample_intermittent_population(
                        memory.geometry, rate, upset_probability, seed=seed + index
                    )
                ),
            )
    return bank, injector


def assert_states_equal(reference_bank, fast_bank):
    for reference_memory, fast_memory in zip(reference_bank, fast_bank):
        assert fast_memory.dump() == reference_memory.dump()
        assert fast_memory.timebase.cycles == reference_memory.timebase.cycles


def draw_intermittent_case(case_index: int):
    """Like :func:`draw_case`, plus an intermittent/soft-error layer."""
    geometries, defect_rate, algorithm, seed = draw_case(case_index)
    rng = make_rng(0x50F7 + case_index)
    intermittent = (
        float(rng.uniform(0.01, 0.15)),  # fraction of cells upset-prone
        float(rng.uniform(0.05, 0.9)),  # per-access upset probability
    )
    return geometries, defect_rate, algorithm, seed, intermittent


def draw_bucketed_case(case_index: int):
    """A fuzz case whose bank repeats geometries (non-trivial buckets).

    Draws 1-2 distinct shapes and assigns 2-5 memories to them round
    robin, so at least one geometry bucket stacks several memories --
    the configuration the batched tier's fleet-wide ops actually
    amortize over.
    """
    rng = make_rng(0xBA7C + case_index)
    shapes = [
        (int(rng.integers(3, 25)), int(rng.integers(2, 11)))
        for _ in range(int(rng.integers(1, 3)))
    ]
    memories = int(rng.integers(2, 6))
    geometries = [
        MemoryGeometry(*shapes[i % len(shapes)], f"fuzz_{i}")
        for i in range(memories)
    ]
    defect_rate = float(rng.uniform(0.0, 0.08))
    algorithm = ALGORITHMS[int(rng.integers(len(ALGORITHMS)))]
    seed = int(rng.integers(2**31))
    return geometries, defect_rate, algorithm, seed


@pytest.mark.parametrize("case_index", range(CASES))
class TestDifferentialFuzz:
    def test_raw_march_backend(self, case_index):
        geometries, defect_rate, algorithm, seed = draw_case(case_index)
        reference_bank, _ = build_bank(geometries, defect_rate, seed)
        fast_bank, _ = build_bank(geometries, defect_rate, seed)
        for reference_memory, fast_memory in zip(reference_bank, fast_bank):
            reference = ReferenceBackend().run(
                reference_memory, algorithm(reference_memory.bits)
            )
            fast = get_backend("numpy").run(fast_memory, algorithm(fast_memory.bits))
            assert fast.failures == reference.failures
            assert fast.cycles == reference.cycles
            assert fast.elapsed_ns == reference.elapsed_ns
        assert_states_equal(reference_bank, fast_bank)

    def test_proposed_session(self, case_index):
        geometries, defect_rate, algorithm, seed = draw_case(case_index)
        reference_bank, _ = build_bank(geometries, defect_rate, seed)
        fast_bank, _ = build_bank(geometries, defect_rate, seed)
        reference = FastDiagnosisScheme(
            reference_bank, algorithm_factory=algorithm
        ).diagnose()
        fast = run_session(
            FastDiagnosisScheme(fast_bank, algorithm_factory=algorithm),
            backend="numpy",
        )
        assert fast.failures == reference.failures
        assert fast.cycles == reference.cycles
        assert fast.pause_ns == reference.pause_ns
        assert fast.deliveries == reference.deliveries
        assert fast.nwrc_ops == reference.nwrc_ops
        assert fast.time_ns == reference.time_ns
        assert_states_equal(reference_bank, fast_bank)

    def test_baseline_session(self, case_index):
        geometries, defect_rate, _, seed = draw_case(case_index)
        reference_bank, reference_injector = build_bank(geometries, defect_rate, seed)
        fast_bank, fast_injector = build_bank(geometries, defect_rate, seed)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert fast.iterations == reference.iterations
        assert fast.localized == reference.localized
        assert [(n, f.describe()) for n, f in fast.missed] == [
            (n, f.describe()) for n, f in reference.missed
        ]
        assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)


@pytest.mark.parametrize("case_index", range(CASES))
class TestDifferentialFuzzIntermittent:
    """The same three equivalence levels over soft-error populations.

    Intermittent hooks draw from per-fault deterministic streams, so the
    fast paths -- which replay every fault-hooked word behaviourally in
    exact reference order -- must reproduce the reference's stochastic
    behaviour draw for draw.
    """

    def test_raw_march_backend(self, case_index):
        geometries, defect_rate, algorithm, seed, layer = draw_intermittent_case(
            case_index
        )
        reference_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        fast_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        for reference_memory, fast_memory in zip(reference_bank, fast_bank):
            reference = ReferenceBackend().run(
                reference_memory, algorithm(reference_memory.bits)
            )
            fast = get_backend("numpy").run(fast_memory, algorithm(fast_memory.bits))
            assert fast.failures == reference.failures
            assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)

    def test_proposed_session(self, case_index):
        geometries, defect_rate, algorithm, seed, layer = draw_intermittent_case(
            case_index
        )
        reference_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        fast_bank, _ = build_bank(geometries, defect_rate, seed, layer)
        reference = FastDiagnosisScheme(
            reference_bank, algorithm_factory=algorithm
        ).diagnose()
        fast = run_session(
            FastDiagnosisScheme(fast_bank, algorithm_factory=algorithm),
            backend="numpy",
        )
        assert fast.failures == reference.failures
        assert fast.cycles == reference.cycles
        assert fast.time_ns == reference.time_ns
        assert_states_equal(reference_bank, fast_bank)

    def test_baseline_session(self, case_index):
        geometries, defect_rate, _, seed, layer = draw_intermittent_case(case_index)
        reference_bank, reference_injector = build_bank(
            geometries, defect_rate, seed, layer
        )
        fast_bank, fast_injector = build_bank(geometries, defect_rate, seed, layer)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert fast.iterations == reference.iterations
        assert fast.localized == reference.localized
        assert [(n, f.describe()) for n, f in fast.missed] == [
            (n, f.describe()) for n, f in reference.missed
        ]
        assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)


@pytest.mark.parametrize("case_index", range(CASES))
class TestDifferentialFuzzBatched:
    """reference == numpy == batched over bucket-stacking banks.

    Banks repeat geometries so the batched tier's stacked sweeps cover
    multi-memory buckets (plus the occasional single-memory bucket); the
    assertions are the full three-way report, fault-map and end-state
    comparison, manufacturing-only and with the intermittent layer.
    """

    @staticmethod
    def intermittent_layer(case_index):
        rng = make_rng(0xBEA7 + case_index)
        # Roughly half the cases add the soft-error population.
        if rng.integers(2) == 0:
            return None
        return (
            float(rng.uniform(0.01, 0.15)),
            float(rng.uniform(0.05, 0.9)),
        )

    def test_proposed_session_three_way(self, case_index):
        geometries, defect_rate, algorithm, seed = draw_bucketed_case(case_index)
        layer = self.intermittent_layer(case_index)
        banks = {
            backend: build_bank(geometries, defect_rate, seed, layer)[0]
            for backend in ("reference", "numpy", "batched")
        }
        reference = FastDiagnosisScheme(
            banks["reference"], algorithm_factory=algorithm
        ).diagnose()
        reports = {
            backend: run_session(
                FastDiagnosisScheme(banks[backend], algorithm_factory=algorithm),
                backend=backend,
            )
            for backend in ("numpy", "batched")
        }
        for backend, fast in reports.items():
            assert fast.failures == reference.failures, backend
            assert fast.cycles == reference.cycles, backend
            assert fast.pause_ns == reference.pause_ns, backend
            assert fast.deliveries == reference.deliveries, backend
            assert fast.nwrc_ops == reference.nwrc_ops, backend
            assert fast.time_ns == reference.time_ns, backend
            assert_states_equal(banks["reference"], banks[backend])

    def test_raw_march_backend(self, case_index):
        geometries, defect_rate, algorithm, seed = draw_bucketed_case(case_index)
        reference_bank, _ = build_bank(geometries, defect_rate, seed)
        fast_bank, _ = build_bank(geometries, defect_rate, seed)
        for reference_memory, fast_memory in zip(reference_bank, fast_bank):
            reference = ReferenceBackend().run(
                reference_memory, algorithm(reference_memory.bits)
            )
            fast = get_backend("batched").run(fast_memory, algorithm(fast_memory.bits))
            assert fast.failures == reference.failures
            assert fast.cycles == reference.cycles
            assert fast.elapsed_ns == reference.elapsed_ns
        assert_states_equal(reference_bank, fast_bank)

    def test_baseline_session(self, case_index):
        geometries, defect_rate, _, seed = draw_bucketed_case(case_index)
        layer = self.intermittent_layer(case_index)
        reference_bank, reference_injector = build_bank(
            geometries, defect_rate, seed, layer
        )
        fast_bank, fast_injector = build_bank(geometries, defect_rate, seed, layer)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="batched",
            bit_accurate=True,
        )
        assert fast.iterations == reference.iterations
        assert fast.localized == reference.localized
        assert [(n, f.describe()) for n, f in fast.missed] == [
            (n, f.describe()) for n, f in reference.missed
        ]
        assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)


def draw_dense_case(case_index: int):
    """A bucket-stacking case in the dense diagnostic regime.

    Defect rates are drawn from [0.5 %, 12 %] (the paper's diagnostic and
    heavy-diagnostic regimes and beyond), a read/write-disturb + weak-cell
    layer covers every remaining table-lowerable class, and a mandatory
    intermittent layer forces the mixed table/behavioural partition --
    the configuration the compiled fault table was built for.
    """
    rng = make_rng(0xDE5E + case_index)
    shapes = [
        (int(rng.integers(4, 30)), int(rng.integers(2, 11)))
        for _ in range(int(rng.integers(1, 3)))
    ]
    memories = int(rng.integers(2, 6))
    geometries = [
        MemoryGeometry(*shapes[i % len(shapes)], f"dense_{i}")
        for i in range(memories)
    ]
    defect_rate = float(rng.uniform(0.005, 0.12))
    dynamic_rate = float(rng.uniform(0.01, 0.08))
    intermittent = (
        float(rng.uniform(0.01, 0.1)),
        float(rng.uniform(0.05, 0.9)),
    )
    algorithm = ALGORITHMS[int(rng.integers(len(ALGORITHMS)))]
    seed = int(rng.integers(2**31))
    return geometries, defect_rate, dynamic_rate, intermittent, algorithm, seed


@pytest.mark.parametrize("case_index", range(CASES))
class TestDifferentialFuzzDense:
    """reference == numpy == batched in the dense-defect regimes.

    Dense populations push most words onto the compiled-table lane while
    the intermittent layer keeps a behavioural population interleaved on
    the same memories, so these cases exercise the three-way lane
    partition (clean / table / replay), taint propagation across coupling
    edges and the wrap-around block evaluation together.
    """

    def test_proposed_session_three_way(self, case_index):
        (
            geometries,
            defect_rate,
            dynamic_rate,
            intermittent,
            algorithm,
            seed,
        ) = draw_dense_case(case_index)
        banks = {
            backend: build_bank(
                geometries, defect_rate, seed, intermittent, dynamic_rate
            )[0]
            for backend in ("reference", "numpy", "batched")
        }
        reference = FastDiagnosisScheme(
            banks["reference"], algorithm_factory=algorithm
        ).diagnose()
        for backend in ("numpy", "batched"):
            fast = run_session(
                FastDiagnosisScheme(banks[backend], algorithm_factory=algorithm),
                backend=backend,
            )
            assert fast.failures == reference.failures, backend
            assert fast.cycles == reference.cycles, backend
            assert fast.deliveries == reference.deliveries, backend
            assert fast.nwrc_ops == reference.nwrc_ops, backend
            assert fast.time_ns == reference.time_ns, backend
            assert_states_equal(banks["reference"], banks[backend])

    def test_dense_manufacturing_only(self, case_index):
        geometries, defect_rate, dynamic_rate, _, algorithm, seed = draw_dense_case(
            case_index
        )
        reference_bank, _ = build_bank(
            geometries, defect_rate, seed, dynamic_rate=dynamic_rate
        )
        fast_bank, _ = build_bank(
            geometries, defect_rate, seed, dynamic_rate=dynamic_rate
        )
        reference = FastDiagnosisScheme(
            reference_bank, algorithm_factory=algorithm
        ).diagnose()
        fast = run_session(
            FastDiagnosisScheme(fast_bank, algorithm_factory=algorithm),
            backend="batched",
        )
        assert fast.failures == reference.failures
        assert fast.cycles == reference.cycles
        assert_states_equal(reference_bank, fast_bank)


class TestAggregateParity:
    """Fleet and scenario aggregates agree across all three backends."""

    @staticmethod
    def comparable(report):
        return report.deterministic_dict()

    def test_fleet_report_parity(self):
        from repro.engine.fleet import FleetSpec, run_fleet

        reports = {}
        for backend in ("reference", "numpy", "batched"):
            spec = FleetSpec(
                soc="case-study",
                memories=4,
                campaigns=3,
                defect_rate=0.004,
                master_seed=11,
                backend=backend,
            )
            reports[backend] = self.comparable(run_fleet(spec, workers=1))
        assert reports["numpy"] == reports["reference"]
        assert reports["batched"] == reports["reference"]

    def test_scenario_report_parity(self):
        from repro.scenarios import run_scenario_fleet
        from repro.scenarios.spec import ScenarioSpec

        shapes = (
            (12, 6, "s0"),
            (12, 6, "s1"),
            (8, 4, "s2"),
            (12, 6, "s3"),
        )
        reports = {}
        for backend in ("reference", "numpy", "batched"):
            spec = ScenarioSpec(
                campaigns=2,
                shapes=shapes,
                master_seed=5,
                backend=backend,
                base_defect_rate=0.01,
                cluster_count=1,
                intermittent_rate=0.01,
                upset_probability=0.4,
                max_retest_rounds=2,
            )
            reports[backend] = self.comparable(
                run_scenario_fleet(spec, workers=1)
            )
        assert reports["numpy"] == reports["reference"]
        assert reports["batched"] == reports["reference"]


@pytest.mark.parametrize("case_index", range(CASES))
class TestDifferentialFuzzSecDed:
    """reference == numpy == batched behind the SEC-DED observation layer.

    ECC sessions must agree on the *post-correction* failure sets and on
    every decoder counter: the layer is a pure function of the
    pre-correction mismatch, so any divergence here means a backend saw a
    different raw mismatch or classified it differently.  Cases reuse the
    bucket-stacking generator (so wrapping geometry buckets hit the
    batched tier's block evaluation) with dense-enough populations that
    multi-bit words exercise the DED/miscorrection branches, not just the
    masked single-bit path.
    """

    @staticmethod
    def draw(case_index):
        geometries, _, algorithm, seed = draw_bucketed_case(case_index)
        rng = make_rng(0xECC2 + case_index)
        defect_rate = float(rng.uniform(0.02, 0.15))
        return geometries, defect_rate, algorithm, seed

    def test_proposed_session_three_way(self, case_index):
        from repro.ecc import EccConfig

        geometries, defect_rate, algorithm, seed = self.draw(case_index)
        banks = {
            backend: build_bank(geometries, defect_rate, seed)[0]
            for backend in ("reference", "numpy", "batched")
        }
        reference = FastDiagnosisScheme(
            banks["reference"], algorithm_factory=algorithm, ecc=EccConfig()
        ).diagnose()
        assert reference.ecc is not None
        for backend in ("numpy", "batched"):
            fast = run_session(
                FastDiagnosisScheme(
                    banks[backend], algorithm_factory=algorithm, ecc=EccConfig()
                ),
                backend=backend,
            )
            assert fast.failures == reference.failures, backend
            assert fast.ecc == reference.ecc, backend
            assert fast.cycles == reference.cycles, backend
            assert fast.time_ns == reference.time_ns, backend
            assert_states_equal(banks["reference"], banks[backend])

    def test_ecc_masks_single_bit_words(self, case_index):
        """Against the same bank, an ECC session never fails a word whose
        mismatch was a correctable single-bit error: its failure count is
        bounded by the raw session's, with the difference showing up in
        the decoder's masked-read counter."""
        from repro.ecc import EccConfig

        geometries, defect_rate, algorithm, seed = self.draw(case_index)
        raw_bank, _ = build_bank(geometries, defect_rate, seed)
        ecc_bank, _ = build_bank(geometries, defect_rate, seed)
        raw = run_session(
            FastDiagnosisScheme(raw_bank, algorithm_factory=algorithm),
            backend="numpy",
        )
        ecc = run_session(
            FastDiagnosisScheme(
                ecc_bank, algorithm_factory=algorithm, ecc=EccConfig()
            ),
            backend="numpy",
        )
        assert ecc.total_failures <= raw.total_failures
        masked = sum(s.masked_reads for s in ecc.ecc.values())
        assert raw.total_failures - ecc.total_failures == masked
