"""Analytic retention decay: exact-boundary timing across every backend.

The compiled fault table evaluates DRF decay from the element plan's
analytic visit clock instead of replaying accesses; these tests pin the
two properties that make that sound:

* the ``>=`` decay boundary -- a read whose elapsed time exactly equals
  ``retention_ns`` decays, on reference, numpy and batched alike (one
  float step more retention and it survives);
* replay-vs-lowered round trips over wrapping buckets: a stacked bucket
  whose controller span wraps (outlier memory) produces bit-identical
  sessions whether the DRFs decay behaviourally or in the table lane.
"""

from __future__ import annotations

import math

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.engine.session import run_session
from repro.faults.injector import FaultInjector
from repro.faults.retention_fault import DataRetentionFault
from repro.march.library import march_with_retention_pauses
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

#: (memory name, shape, DRF cell, fragile side).  The 17-word outlier
#: widens the controller span so the 8-word members sweep with
#: wrap-around -- the partial-block path the analytic clock must get
#: right.
_LAYOUT = (
    ("r0", (8, 4), CellRef(1, 0), 1),
    ("r1", (8, 4), CellRef(4, 2), 0),
    ("big", (17, 4), CellRef(12, 3), 1),
)


class _ProbeRetention(DataRetentionFault):
    """Logs the elapsed time of every at-risk read, decaying never."""

    def __init__(self, cell, fragile_value):
        super().__init__(cell, fragile_value, retention_ns=1e18)
        self.elapsed_log: list[float] = []

    def on_read(self, memory, word, bit, stored_bit):
        if self._written_at_ns is not None and stored_bit == self.fragile_value:
            self.elapsed_log.append(memory.now_ns - self._written_at_ns)
        return super().on_read(memory, word, bit, stored_bit)


def build_bank(fault_factory) -> MemoryBank:
    injector = FaultInjector()
    memories = []
    for name, (words, bits), cell, fragile in _LAYOUT:
        memory = SRAM(MemoryGeometry(words, bits, name))
        injector.inject(memory, [fault_factory(cell, fragile)])
        memories.append(memory)
    return MemoryBank(memories)


def harvested_elapsed() -> list[float]:
    """Every at-risk read's exact elapsed time under the pause march."""
    probes: list[_ProbeRetention] = []

    def factory(cell, fragile):
        probe = _ProbeRetention(cell, fragile)
        probes.append(probe)
        return probe

    FastDiagnosisScheme(
        build_bank(factory), algorithm_factory=march_with_retention_pauses
    ).diagnose()
    return sorted({t for probe in probes for t in probe.elapsed_log})


def run_all_backends(retention_ns: float):
    reports = {}
    banks = {}
    for backend in ("reference", "numpy", "batched"):
        bank = build_bank(
            lambda cell, fragile: DataRetentionFault(
                cell, fragile, retention_ns=retention_ns
            )
        )
        scheme = FastDiagnosisScheme(
            bank, algorithm_factory=march_with_retention_pauses
        )
        reports[backend] = (
            scheme.diagnose()
            if backend == "reference"
            else run_session(scheme, backend=backend)
        )
        banks[backend] = bank
    reference = reports["reference"]
    for backend in ("numpy", "batched"):
        assert reports[backend].failures == reference.failures, backend
        assert reports[backend].cycles == reference.cycles, backend
        assert reports[backend].time_ns == reference.time_ns, backend
        for ref_mem, fast_mem in zip(banks["reference"], banks[backend]):
            assert fast_mem.dump() == ref_mem.dump(), (backend, ref_mem.name)
    return reference


class TestExactRetentionBoundary:
    @pytest.fixture(scope="class")
    def boundary(self) -> float:
        elapsed = harvested_elapsed()
        assert elapsed, "the pause march must put fragile cells at risk"
        return elapsed[-1]

    def test_read_exactly_at_retention_decays_everywhere(self, boundary):
        report = run_all_backends(boundary)
        assert report.total_failures > 0

    def test_one_ulp_more_retention_survives_everywhere(self, boundary):
        # Same schedule, retention one float step above the largest
        # elapsed: with a strict > comparison the previous test would
        # pass for the wrong reason; this pair pins >= on every backend.
        report = run_all_backends(math.nextafter(boundary, math.inf))
        assert report.total_failures == 0

    def test_mid_range_retention_round_trips(self, boundary):
        # A retention inside the observed elapsed range decays some reads
        # and spares others -- the mixed case over the wrapping bucket.
        elapsed = harvested_elapsed()
        if len(elapsed) < 2:
            pytest.skip("needs at least two distinct elapsed times")
        report = run_all_backends(elapsed[len(elapsed) // 2])
        assert report.total_failures > 0
