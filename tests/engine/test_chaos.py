"""The deterministic chaos harness and its headline invariant.

The property this file pins (the CI chaos-smoke gate asserts the same
end-to-end through the CLI): a fleet run with seeded fault injection --
workers killed, exceptions raised, checkpoint chunks corrupted -- that
recovers through retries and quarantine-mode resume reproduces the
undisturbed run's ``deterministic_dict()`` *and* checkpoint store bytes
exactly, on every backend.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.engine.checkpoint import CheckpointError
from repro.engine.fleet import FleetSpec, run_fleet
from repro.engine.packing import HAVE_NUMPY
from repro.engine.supervisor import ChunkRetryPolicy, set_current_attempt
from repro.testing import (
    CHAOS_CRASH_EXIT_CODE,
    ChaosChunkRunner,
    ChaosError,
    ChaosSpec,
    corrupt_checkpoint_chunks,
    parse_chaos_spec,
)

RETRY = ChunkRetryPolicy(
    max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05
)

#: Every chunk faults exactly once (a crash or an exception, drawn from
#: the seeded stream), then its retry succeeds.
CRASH_OR_RAISE = ChaosSpec(
    seed=9, crash_rate=0.5, exception_rate=0.5, max_faults_per_chunk=1
)


def _spec(backend: str, campaigns: int = 4) -> FleetSpec:
    # A uniform small geometry so the same population is schedulable on
    # the reference, numpy and fleet-batched backends alike.
    return FleetSpec(
        memories=2,
        campaigns=campaigns,
        defect_rate=0.004,
        master_seed=11,
        include_baseline=False,
        backend=backend,
        geometry=(64, 8),
    )


def _store_bytes(root) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(root).glob("*.json"))
    }


def _echo_chunk(spec, indices):
    return list(indices)


class TestChaosSpec:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            ChaosSpec(crash_rate=0.5, exception_rate=0.4, hang_rate=0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"exception_rate": 1.5},
            {"corrupt_rate": 2.0},
            {"hang_s": 0.0},
            {"max_faults_per_chunk": -1},
        ],
    )
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosSpec(**kwargs)

    def test_fault_draw_is_deterministic(self):
        chaos = ChaosSpec(seed=7, crash_rate=0.3, exception_rate=0.3)
        draws = [chaos.fault_for(chunk, 0) for chunk in range(32)]
        again = [chaos.fault_for(chunk, 0) for chunk in range(32)]
        assert draws == again
        assert set(draws) > {None}  # some chunks fault at these rates

    def test_seed_changes_the_plan(self):
        one = ChaosSpec(seed=1, crash_rate=0.5)
        two = ChaosSpec(seed=2, crash_rate=0.5)
        assert [one.fault_for(c, 0) for c in range(64)] != [
            two.fault_for(c, 0) for c in range(64)
        ]

    @pytest.mark.parametrize(
        "kwargs,kind",
        [
            ({"crash_rate": 1.0}, "crash"),
            ({"exception_rate": 1.0}, "exception"),
            ({"hang_rate": 1.0}, "hang"),
            ({}, None),
        ],
    )
    def test_rate_one_always_draws_that_band(self, kwargs, kind):
        chaos = ChaosSpec(seed=3, **kwargs)
        assert {chaos.fault_for(chunk, 0) for chunk in range(16)} == {kind}

    def test_max_faults_bounds_attempts(self):
        chaos = ChaosSpec(seed=3, crash_rate=1.0, max_faults_per_chunk=2)
        assert chaos.fault_for(0, 0) == "crash"
        assert chaos.fault_for(0, 1) == "crash"
        assert chaos.fault_for(0, 2) is None

    def test_corruption_stream_extremes(self):
        assert ChaosSpec(corrupt_rate=1.0).corrupts_chunk(5)
        assert not ChaosSpec(corrupt_rate=0.0).corrupts_chunk(5)


class TestParseChaosSpec:
    def test_full_round_trip(self):
        chaos = parse_chaos_spec(
            "seed=7, crash=0.25, exception=0.1, hang=0.05, hang_s=9,"
            " corrupt=0.5, max_faults=2"
        )
        assert chaos == ChaosSpec(
            seed=7,
            crash_rate=0.25,
            exception_rate=0.1,
            hang_rate=0.05,
            hang_s=9.0,
            corrupt_rate=0.5,
            max_faults_per_chunk=2,
        )

    def test_empty_spec_is_default(self):
        assert parse_chaos_spec("") == ChaosSpec()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="bad --chaos token"):
            parse_chaos_spec("crashes=0.5")

    def test_missing_separator_rejected(self):
        with pytest.raises(ValueError, match="bad --chaos token"):
            parse_chaos_spec("crash")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad --chaos value"):
            parse_chaos_spec("seed=lots")


class TestChaosRunner:
    def test_injected_exception_names_chunk_and_attempt(self):
        runner = ChaosChunkRunner(
            ChaosSpec(seed=3, exception_rate=1.0), inner=_echo_chunk
        )
        set_current_attempt(0)
        try:
            with pytest.raises(ChaosError, match="campaign 4 \\(attempt 0\\)"):
                runner(None, (4, 5))
        finally:
            set_current_attempt(0)

    def test_delegates_once_faults_are_spent(self):
        runner = ChaosChunkRunner(
            ChaosSpec(seed=3, exception_rate=1.0, max_faults_per_chunk=1),
            inner=_echo_chunk,
        )
        set_current_attempt(1)
        try:
            assert runner(None, (4, 5)) == [4, 5]
        finally:
            set_current_attempt(0)

    def test_crash_exit_code_is_distinctive(self):
        assert CHAOS_CRASH_EXIT_CODE not in (0, 1)


BACKENDS = [
    "reference",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable"),
    ),
    pytest.param(
        "batched",
        marks=pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable"),
    ),
]


class TestChaosDeterminism:
    """Chaos changes scheduling, never results -- on every backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_and_retry_reproduce_plain_run_exactly(
        self, backend, tmp_path
    ):
        spec = _spec(backend)
        plain = run_fleet(
            spec, workers=2, chunk_size=1, checkpoint=tmp_path / "plain"
        )
        chaotic = run_fleet(
            spec,
            workers=2,
            chunk_size=1,
            checkpoint=tmp_path / "chaos",
            chunk_runner=ChaosChunkRunner(CRASH_OR_RAISE),
            retry=RETRY,
        )
        assert chaotic.deterministic_dict() == plain.deterministic_dict()
        assert _store_bytes(tmp_path / "chaos") == _store_bytes(
            tmp_path / "plain"
        )


class TestCheckpointCorruptionRecovery:
    CORRUPT = ChaosSpec(seed=2, corrupt_rate=0.6)

    def test_quarantine_resume_heals_corrupt_chunks(self, tmp_path):
        spec = _spec("reference", campaigns=6)
        store = tmp_path / "ckpt"
        original = run_fleet(spec, workers=2, chunk_size=1, checkpoint=store)
        corrupted = corrupt_checkpoint_chunks(store, self.CORRUPT)
        assert corrupted  # the seeded stream must damage at least one chunk
        resumed = run_fleet(
            spec,
            workers=2,
            chunk_size=1,
            checkpoint=store,
            resume=True,
            on_chunk_failure="quarantine",
        )
        assert resumed.canonical_json() == original.canonical_json()
        quarantined = sorted(store.glob("*.quarantined"))
        assert len(quarantined) == len(corrupted)
        # The healed store holds the exact bytes the corruption destroyed.
        for index in corrupted:
            reloaded = json.loads(
                (store / f"chunk_{index:05d}.json").read_text()
            )
            assert reloaded["indices"] == [index]

    def test_strict_resume_still_refuses_corrupt_store(self, tmp_path):
        spec = _spec("reference", campaigns=6)
        store = tmp_path / "ckpt"
        run_fleet(spec, workers=2, chunk_size=1, checkpoint=store)
        assert corrupt_checkpoint_chunks(store, self.CORRUPT)
        with pytest.raises(CheckpointError):
            run_fleet(
                spec, workers=2, chunk_size=1, checkpoint=store, resume=True
            )
