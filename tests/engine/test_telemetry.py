"""Telemetry integration: determinism, resume equality, overhead guard.

The contract under test: enabling telemetry changes *no result byte* --
``deterministic_dict()`` is byte-for-byte identical with telemetry on and
off, across backends, worker layouts and checkpoint/resume cycles -- and
the disabled (null-tracer) instrumentation keeps the hot path within the
2% overhead guard.
"""

from __future__ import annotations

import dataclasses
import json
import time

import pytest

from repro.engine.fleet import FleetSpec, run_fleet
from repro.engine.packing import HAVE_NUMPY
from repro.telemetry.core import NULL_TRACER, activate, deactivate, set_tracer, tracer
from repro.telemetry.report import TelemetryReport

SPEC = FleetSpec(
    soc="case-study",
    memories=2,
    campaigns=4,
    defect_rate=0.004,
    master_seed=7,
    backend="auto",
)

BACKENDS = ["reference"] + (["numpy", "batched"] if HAVE_NUMPY else [])


@pytest.fixture(autouse=True)
def restore_null_tracer():
    yield
    set_tracer(NULL_TRACER)


def canonical(report) -> str:
    return json.dumps(report.deterministic_dict(), sort_keys=True)


class TestDeterminismUnchanged:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_telemetry_changes_no_result_byte(self, backend):
        spec = dataclasses.replace(SPEC, backend=backend)
        plain = run_fleet(spec, workers=1)
        traced = run_fleet(spec, workers=1, telemetry=True)
        assert canonical(plain) == canonical(traced)

    def test_pooled_telemetry_matches_inline(self):
        inline = run_fleet(SPEC, workers=1, telemetry=True)
        pooled = run_fleet(SPEC, workers=2, chunk_size=1, telemetry=True)
        assert canonical(inline) == canonical(pooled)

    def test_report_attachment(self):
        plain = run_fleet(SPEC, workers=1)
        traced = run_fleet(SPEC, workers=1, telemetry=True)
        assert plain.telemetry is None
        assert isinstance(traced.telemetry, TelemetryReport)
        # Present in the JSON document, absent from deterministic content.
        assert "telemetry" in traced.to_json_dict()
        assert "telemetry" not in traced.deterministic_dict()

    def test_global_tracer_restored_after_run(self):
        run_fleet(SPEC, workers=1, telemetry=True)
        assert tracer() is NULL_TRACER


class TestTelemetryContent:
    def test_lane_and_fleet_counters_populated(self):
        report = run_fleet(SPEC, workers=1, telemetry=True)
        counters = report.telemetry.counters
        # 2-memory heterogeneous case-study resolves auto -> numpy: the
        # replay and clean lanes run, the table lane stays at zero.
        assert counters.get("lane.replay.ns") > 0
        assert counters.get("lane.clean.ns") > 0
        assert counters.get("fleet.chunks") >= 1
        assert counters.get("fleet.workers") == 1
        assert counters.get("fleet.worker_busy.ns") > 0
        attribution = report.telemetry.lane_attribution()
        assert attribution["march_time_s"] > 0
        assert attribution["total_words"] > 0

    def test_word_accounting_balances(self):
        report = run_fleet(SPEC, workers=1, telemetry=True)
        lanes = report.telemetry.lane_attribution()["lanes"]
        total = sum(lane["words"] for lane in lanes.values())
        # Every lane word count is a word visit of some march sweep; the
        # split must partition (no double counting, nothing negative).
        assert all(lane["words"] >= 0 for lane in lanes.values())
        assert total == report.telemetry.lane_attribution()["total_words"]

    def test_plan_cache_promoted_with_aliases_kept(self):
        report = run_fleet(SPEC, workers=1, telemetry=True)
        counters = report.telemetry.counters
        assert counters.get("plan_cache.hits") == report.plan_cache_hits
        assert counters.get("plan_cache.misses") == report.plan_cache_misses
        # The legacy FleetReport JSON keys survive as aliases.
        assert "plan_cache" in report.to_json_dict()

    def test_pooled_run_ships_worker_snapshots(self):
        report = run_fleet(SPEC, workers=2, chunk_size=1, telemetry=True)
        # Parent + at least one worker process contributed spans.
        assert len(report.telemetry.processes) >= 2
        assert report.telemetry.span_stats["fleet.chunk"][0] == 4

    def test_march_element_spans_recorded(self):
        report = run_fleet(SPEC, workers=1, telemetry=True)
        assert report.telemetry.span_stats["march.element"][0] > 0


@pytest.mark.skipif(not HAVE_NUMPY, reason="checkpoint fleets use auto backend")
class TestCheckpointResumeEquality:
    def test_resume_with_telemetry_toggled(self, tmp_path):
        baseline = run_fleet(SPEC, workers=1)
        # Interrupted run persisted everything with telemetry ON ...
        first = run_fleet(
            SPEC, workers=1, checkpoint=tmp_path / "store", telemetry=True
        )
        # ... resumed with telemetry OFF: loads every chunk from disk.
        resumed_off = run_fleet(
            SPEC, workers=1, checkpoint=tmp_path / "store", resume=True
        )
        # ... and resumed again with telemetry ON.
        resumed_on = run_fleet(
            SPEC,
            workers=1,
            checkpoint=tmp_path / "store",
            resume=True,
            telemetry=True,
        )
        assert canonical(first) == canonical(baseline)
        assert canonical(resumed_off) == canonical(baseline)
        assert canonical(resumed_on) == canonical(baseline)
        assert resumed_on.telemetry.counters.get("fleet.chunks_resumed") > 0
        assert resumed_on.telemetry.counters.get("checkpoint.loads") > 0
        assert resumed_on.telemetry.counters.get("checkpoint.load.ns") > 0

    def test_telemetry_leaves_checkpoint_bytes_alone(self, tmp_path):
        run_fleet(SPEC, workers=1, checkpoint=tmp_path / "plain")
        run_fleet(SPEC, workers=1, checkpoint=tmp_path / "traced", telemetry=True)
        plain_files = sorted(p.name for p in (tmp_path / "plain").iterdir())
        traced_files = sorted(p.name for p in (tmp_path / "traced").iterdir())
        assert plain_files == traced_files
        for name in plain_files:
            assert (tmp_path / "plain" / name).read_bytes() == (
                tmp_path / "traced" / name
            ).read_bytes()

    def test_checkpoint_save_instrumented(self, tmp_path):
        report = run_fleet(
            SPEC, workers=1, checkpoint=tmp_path / "store", telemetry=True
        )
        counters = report.telemetry.counters
        assert counters.get("checkpoint.saves") > 0
        assert counters.get("checkpoint.save.ns") > 0


class TestNullOverheadGuard:
    def test_gate_cost_is_sub_microsecond(self):
        # The disabled hot path pays one global read plus one attribute
        # check per site; bound it hard.
        iterations = 200_000
        started = time.perf_counter()
        for _ in range(iterations):
            if tracer().enabled:  # pragma: no cover - never taken
                raise AssertionError("tracer unexpectedly enabled")
        per_gate = (time.perf_counter() - started) / iterations
        assert per_gate < 1e-6

    @pytest.mark.skipif(not HAVE_NUMPY, reason="measures the batched session")
    def test_disabled_telemetry_within_two_percent_of_session(self):
        # Aggregate bound: (sites actually hit) x (per-gate cost) must be
        # under 2% of the quick-suite session it instruments.  The span
        # count of an instrumented run upper-bounds the site count up to
        # a constant; 50x is far beyond the real sites-per-span ratio.
        from repro.analysis.bench import _timed_session
        from repro.soc.case_study import case_study_soc

        soc = case_study_soc(memories=32)
        _timed_session(soc, 0.001, 2026, "batched")  # warm caches
        tr = activate()
        try:
            _timed_session(soc, 0.001, 2026, "batched")
        finally:
            deactivate()
        spans = sum(stats[0] for stats in tr.span_stats.values())
        assert spans > 0

        iterations = 100_000
        started = time.perf_counter()
        for _ in range(iterations):
            if tracer().enabled:  # pragma: no cover - never taken
                raise AssertionError
        per_gate = (time.perf_counter() - started) / iterations

        elapsed, _ = _timed_session(soc, 0.001, 2026, "batched")
        assert per_gate * spans * 50 < 0.02 * elapsed
