"""Backend equivalence: the numpy backend is bit-exact vs the reference.

Every assertion here compares *complete* results -- the failure-record
lists (order included), cycle/time accounting and the final stored memory
state -- between the pure-Python reference backend and the numpy
bit-parallel backend on identically built memories.
"""

from __future__ import annotations

import pytest

from repro.engine.backends import (
    MarchBackend,
    NumpyBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.faults.coupling import (
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.faults.dynamic import (
    DeceptiveReadDestructiveFault,
    IncorrectReadFault,
    ReadDestructiveFault,
    WriteDisturbFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.faults.weak_cell import WeakCellDefect
from repro.march.library import (
    march_c_minus,
    march_cw_nw,
    march_ss,
    march_with_retention_pauses,
)
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM

GEOMETRY = MemoryGeometry(16, 6, "eq")

#: One representative of every cell-fault class in the library.
FAULT_LIBRARY = [
    ("saf0", lambda: StuckAtFault(CellRef(3, 1), value=0)),
    ("saf1", lambda: StuckAtFault(CellRef(0, 5), value=1)),
    ("tf-up", lambda: TransitionFault(CellRef(7, 2), rising=True)),
    ("tf-down", lambda: TransitionFault(CellRef(15, 0), rising=False)),
    ("cf-in-interword", lambda: InversionCouplingFault(CellRef(2, 3), CellRef(9, 3))),
    ("cf-in-falling", lambda: InversionCouplingFault(CellRef(4, 0), CellRef(5, 1), trigger_rising=False)),
    ("cf-id-intraword", lambda: IdempotentCouplingFault(CellRef(6, 1), CellRef(6, 4), forced_value=1)),
    ("cf-st", lambda: StateCouplingFault(CellRef(8, 2), CellRef(12, 2), aggressor_state=1, forced_value=0)),
    ("cf-st-read-disturb", lambda: StateCouplingFault(CellRef(1, 0), CellRef(1, 1), affects_write=False)),
    ("irf", lambda: IncorrectReadFault(CellRef(10, 3))),
    ("rdf", lambda: ReadDestructiveFault(CellRef(11, 5))),
    ("drdf", lambda: DeceptiveReadDestructiveFault(CellRef(13, 2))),
    ("wdf", lambda: WriteDisturbFault(CellRef(14, 4))),
    ("drf0", lambda: DataRetentionFault(CellRef(5, 5), fragile_value=0)),
    ("drf1", lambda: DataRetentionFault(CellRef(12, 1), fragile_value=1)),
    ("weak", lambda: WeakCellDefect(CellRef(9, 0), weak_value=1)),
]

ALGORITHMS = [march_c_minus, march_cw_nw, march_ss, march_with_retention_pauses]


def assert_equivalent(make_memory, algorithm_factory):
    """Run both backends on twin memories and compare everything."""
    reference_memory = make_memory()
    numpy_memory = make_memory()
    reference = ReferenceBackend().run(
        reference_memory, algorithm_factory(reference_memory.bits)
    )
    vectorized = get_backend("numpy").run(
        numpy_memory, algorithm_factory(numpy_memory.bits)
    )
    assert vectorized.failures == reference.failures
    assert vectorized.cycles == reference.cycles
    assert vectorized.elapsed_ns == reference.elapsed_ns
    assert numpy_memory.dump() == reference_memory.dump()
    assert numpy_memory.timebase.cycles == reference_memory.timebase.cycles
    return reference


class TestFaultLibraryEquivalence:
    @pytest.mark.parametrize("label,factory", FAULT_LIBRARY, ids=[f[0] for f in FAULT_LIBRARY])
    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=[a.__name__ for a in ALGORITHMS])
    def test_single_fault(self, label, factory, algorithm):
        def build():
            memory = SRAM(GEOMETRY)
            factory().attach(memory)
            return memory

        assert_equivalent(build, algorithm)

    def test_fault_free_memory_passes_on_both(self):
        result = assert_equivalent(lambda: SRAM(GEOMETRY), march_cw_nw)
        assert result.passed

    def test_faults_actually_fire(self):
        # Guard against vacuous equivalence: the library must produce
        # failures under the paper's algorithm for the logical classes.
        def build():
            memory = SRAM(GEOMETRY)
            StuckAtFault(CellRef(3, 1), value=0).attach(memory)
            StuckAtFault(CellRef(4, 2), value=1).attach(memory)
            return memory

        result = assert_equivalent(build, march_cw_nw)
        assert result.failure_count > 0


class TestPopulationEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_sampled_population(self, seed):
        geometry = MemoryGeometry(32, 9, "pop")

        def build():
            memory = SRAM(geometry)
            population = sample_population(geometry, 0.04, rng=seed)
            FaultInjector().inject(memory, population.faults)
            return memory

        assert_equivalent(build, march_cw_nw)

    def test_dense_population(self):
        # Every word dirty: the vector path degenerates to the behavioural
        # path and must still agree.
        geometry = MemoryGeometry(8, 4, "dense")

        def build():
            memory = SRAM(geometry)
            for word in range(8):
                StuckAtFault(CellRef(word, word % 4), value=word % 2).attach(memory)
            return memory

        assert_equivalent(build, march_cw_nw)


class TestFallbacks:
    def test_decoder_fault_falls_back_and_matches(self):
        def build():
            memory = SRAM(GEOMETRY)
            memory.decoder.remap_address(3, 5)
            return memory

        assert not NumpyBackend().supports(build())
        assert_equivalent(build, march_c_minus)

    def test_column_fault_falls_back_and_matches(self):
        def build():
            memory = SRAM(GEOMETRY)
            memory.column_mux.swap_bits(0, 1, path="write")
            return memory

        assert_equivalent(build, march_cw_nw)

    def test_stop_on_first_failure_delegates(self):
        memory = SRAM(GEOMETRY)
        StuckAtFault(CellRef(2, 2), value=1).attach(memory)
        backend = NumpyBackend(stop_on_first_failure=True)
        assert not backend.supports(memory)
        result = backend.run(memory, march_c_minus(memory.bits))
        assert result.failure_count == 1


class TestRegistry:
    def test_known_backends(self):
        availability = available_backends()
        assert availability["reference"] is True
        assert "numpy" in availability and "fast" in availability

    def test_get_backend_auto(self):
        assert isinstance(get_backend("auto"), MarchBackend)
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("fast"), NumpyBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("no-such-backend")

    def test_resolve_backend_passthrough(self):
        backend = ReferenceBackend()
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend("numpy"), NumpyBackend)
        assert isinstance(resolve_backend(None), MarchBackend)

    def test_register_backend_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_backend("reference", ReferenceBackend)
