"""Checkpoint/resume property tests.

The core property: for *any* prefix of persisted chunks, a resumed run
produces a :class:`~repro.engine.aggregate.FleetReport` whose
deterministic content is byte-for-byte identical to the uninterrupted
run's, and leaves the store byte-identical file by file.  Corrupt and
stale stores are rejected with :class:`~repro.engine.checkpoint.CheckpointError`.
"""

from __future__ import annotations

import dataclasses
import json
import shutil

import pytest

from repro.engine.aggregate import CampaignSummary, FleetReport
from repro.engine.checkpoint import CheckpointError, CheckpointStore, spec_digest
from repro.engine.fleet import (
    FleetScheduler,
    FleetSpec,
    chunked_indices,
    run_chunk,
)
from repro.scenarios import run_scenario_fleet
from repro.scenarios.spec import ScenarioSpec

SPEC = FleetSpec(
    soc="case-study",
    memories=2,
    campaigns=4,
    defect_rate=0.004,
    master_seed=13,
    backend="auto",
)
CHUNK_SIZE = 1
TOTAL_CHUNKS = len(chunked_indices(SPEC.campaigns, CHUNK_SIZE))


def run_with_store(tmp_path, name, resume=False, spec=SPEC):
    scheduler = FleetScheduler(
        spec,
        workers=1,
        chunk_size=CHUNK_SIZE,
        checkpoint=tmp_path / name,
        resume=resume,
    )
    return scheduler.run(), scheduler


def store_files(root):
    return sorted(p.name for p in root.iterdir())


class TestResumeProperty:
    @pytest.mark.parametrize("prefix", range(TOTAL_CHUNKS + 1))
    def test_resume_after_any_prefix_matches_uninterrupted(self, tmp_path, prefix):
        full_report, scheduler = run_with_store(tmp_path, "full")
        full_dir = tmp_path / "full"

        # Simulate a run interrupted after ``prefix`` chunks: a store
        # holding the manifest plus only the first N chunk files.
        partial_dir = tmp_path / f"partial_{prefix}"
        partial_dir.mkdir()
        shutil.copy(full_dir / "manifest.json", partial_dir / "manifest.json")
        for index in range(prefix):
            name = f"chunk_{index:05d}.json"
            shutil.copy(full_dir / name, partial_dir / name)

        resumed_report, _ = run_with_store(
            tmp_path, f"partial_{prefix}", resume=True
        )
        assert resumed_report.canonical_json() == full_report.canonical_json()
        assert resumed_report.campaigns == SPEC.campaigns

        # The on-disk format round-trips byte for byte: re-running the
        # missing suffix reproduces exactly the files the uninterrupted
        # run wrote.
        assert store_files(partial_dir) == store_files(full_dir)
        for name in store_files(full_dir):
            assert (partial_dir / name).read_bytes() == (
                full_dir / name
            ).read_bytes(), name

    def test_resume_with_complete_store_runs_nothing(self, tmp_path):
        full_report, _ = run_with_store(tmp_path, "full")

        def exploding_runner(spec, indices):  # pragma: no cover - must not run
            raise AssertionError("resume re-ran a persisted chunk")

        scheduler = FleetScheduler(
            SPEC,
            workers=1,
            chunk_size=CHUNK_SIZE,
            chunk_runner=exploding_runner,
            checkpoint=tmp_path / "full",
            resume=True,
        )
        assert scheduler.run().canonical_json() == full_report.canonical_json()

    def test_interrupted_run_then_resume(self, tmp_path):
        full_report, _ = run_with_store(tmp_path, "full")

        failures = {"budget": 2}

        def interrupting_runner(spec, indices):
            if failures["budget"] == 0:
                raise KeyboardInterrupt("simulated operator interrupt")
            failures["budget"] -= 1
            return run_chunk(spec, indices)

        with pytest.raises(KeyboardInterrupt):
            FleetScheduler(
                SPEC,
                workers=1,
                chunk_size=CHUNK_SIZE,
                chunk_runner=interrupting_runner,
                checkpoint=tmp_path / "interrupted",
            ).run()
        store = CheckpointStore(
            tmp_path / "interrupted", FleetScheduler(SPEC, workers=1,
            chunk_size=CHUNK_SIZE).spec, CHUNK_SIZE, TOTAL_CHUNKS,
        )
        assert store.completed_chunks() == [0, 1]

        resumed, _ = run_with_store(tmp_path, "interrupted", resume=True)
        assert resumed.canonical_json() == full_report.canonical_json()

    def test_pooled_run_checkpoints_match_inline(self, tmp_path):
        inline_report, _ = run_with_store(tmp_path, "inline")
        scheduler = FleetScheduler(
            SPEC,
            workers=2,
            chunk_size=CHUNK_SIZE,
            checkpoint=tmp_path / "pooled",
        )
        pooled_report = scheduler.run()
        assert pooled_report.canonical_json() == inline_report.canonical_json()
        for name in store_files(tmp_path / "inline"):
            assert (tmp_path / "pooled" / name).read_bytes() == (
                tmp_path / "inline" / name
            ).read_bytes()

    def test_resume_adopts_store_chunk_size(self, tmp_path):
        # The implicit chunk-size default depends on the worker count, so
        # a resume on different workers (or a different machine) must
        # adopt the store's recorded partition instead of re-deriving it.
        spec = dataclasses.replace(
            SPEC, campaigns=16, include_baseline=False, repair=False
        )
        first = FleetScheduler(
            spec, workers=1, checkpoint=tmp_path / "store"
        )
        assert first.chunk_size == 4  # 16 campaigns // (1 worker * 4)
        full_report = first.run()
        resumed = FleetScheduler(
            spec, workers=2, checkpoint=tmp_path / "store", resume=True
        )
        assert resumed.chunk_size == 4  # adopted, not 16 // (2 * 4) = 2
        assert resumed.run().canonical_json() == full_report.canonical_json()

    def test_scenario_resume(self, tmp_path):
        spec = ScenarioSpec(
            campaigns=3,
            memories=4,
            master_seed=9,
            base_defect_rate=0.01,
            cluster_count=1,
            max_retest_rounds=1,
            include_baseline=False,
        )
        full = run_scenario_fleet(
            spec, workers=1, chunk_size=1, checkpoint=tmp_path / "sc"
        )
        # Drop the last chunk and resume.
        (tmp_path / "sc" / "chunk_00002.json").unlink()
        resumed = run_scenario_fleet(
            spec, workers=1, chunk_size=1, checkpoint=tmp_path / "sc", resume=True
        )
        assert resumed.canonical_json() == full.canonical_json()


class TestRejection:
    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="requires a checkpoint"):
            FleetScheduler(SPEC, workers=1, resume=True)

    def test_prepared_store_for_other_spec_rejected(self, tmp_path):
        # A CheckpointStore instance built for spec A must not be
        # accepted by a scheduler running spec B, even though A's chunk
        # digests are internally consistent.
        _, scheduler = run_with_store(tmp_path, "store")
        other = dataclasses.replace(SPEC, master_seed=99)
        with pytest.raises(CheckpointError, match="does not match"):
            FleetScheduler(
                other,
                workers=1,
                chunk_size=CHUNK_SIZE,
                checkpoint=scheduler.checkpoint,
                resume=True,
            )

    def test_prepared_store_for_same_spec_accepted(self, tmp_path):
        full_report, scheduler = run_with_store(tmp_path, "store")
        resumed = FleetScheduler(
            SPEC,
            workers=1,
            chunk_size=CHUNK_SIZE,
            checkpoint=scheduler.checkpoint,
            resume=True,
        ).run()
        assert resumed.canonical_json() == full_report.canonical_json()

    def test_stale_spec_rejected(self, tmp_path):
        run_with_store(tmp_path, "store")
        other = dataclasses.replace(SPEC, master_seed=99)
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            run_with_store(tmp_path, "store", spec=other)

    def test_different_chunking_rejected(self, tmp_path):
        run_with_store(tmp_path, "store")
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            FleetScheduler(
                SPEC, workers=1, chunk_size=2, checkpoint=tmp_path / "store"
            )

    def test_corrupt_chunk_rejected(self, tmp_path):
        _, scheduler = run_with_store(tmp_path, "store")
        path = tmp_path / "store" / "chunk_00001.json"
        payload = json.loads(path.read_text())
        payload["summaries"][0]["injected_faults"] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            run_with_store(tmp_path, "store", resume=True)

    def test_truncated_chunk_rejected(self, tmp_path):
        run_with_store(tmp_path, "store")
        path = tmp_path / "store" / "chunk_00000.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(CheckpointError, match="corrupt checkpoint chunk"):
            run_with_store(tmp_path, "store", resume=True)

    def test_corrupt_manifest_rejected(self, tmp_path):
        run_with_store(tmp_path, "store")
        (tmp_path / "store" / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt checkpoint manifest"):
            run_with_store(tmp_path, "store", resume=True)

    def test_tampered_chunk_indices_rejected(self, tmp_path):
        run_with_store(tmp_path, "store")
        path = tmp_path / "store" / "chunk_00001.json"
        payload = json.loads(path.read_text())
        payload["indices"] = [3]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="campaign indices"):
            run_with_store(tmp_path, "store", resume=True)

    def test_foreign_chunk_digest_rejected(self, tmp_path):
        # A chunk file copied in from a different campaign's store must
        # not be aggregated even if the manifest is intact.
        run_with_store(tmp_path, "store")
        path = tmp_path / "store" / "chunk_00000.json"
        payload = json.loads(path.read_text())
        payload["digest"] = "0" * 64
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="stale checkpoint chunk"):
            run_with_store(tmp_path, "store", resume=True)


class TestRoundTrip:
    def test_summary_round_trip_is_exact(self, tmp_path):
        store = CheckpointStore(tmp_path / "rt", SPEC, 2, 1)
        summaries = [
            CampaignSummary(
                index=0,
                seed=123,
                soc_name="rt",
                injected_faults=7,
                localization_rate=0.9375,
                total_failures=41,
                proposed_time_ns=1.5e6,
                baseline_time_ns=1.23456789012e8,
                baseline_iterations=9,
                reduction_factor=82.30419,
                repaired_words=3,
                fully_repaired=True,
                verification_passed=False,
                scenario="rt-flow",
                assigned_rate_mean=0.00123,
                escaped_faults=1,
                escape_rate=1 / 7,
                retest_rounds=2,
                retest_converged=True,
                intermittent_faults=4,
                intermittent_detected=3,
            ),
            CampaignSummary(
                index=1,
                seed=124,
                soc_name="rt",
                injected_faults=0,
                localization_rate=1.0,
                total_failures=0,
            ),
        ]
        store.save(0, (0, 1), summaries)
        assert store.load(0) == summaries

    def test_digest_depends_on_spec_seed_backend_and_chunking(self):
        base = spec_digest(SPEC, 1, 4)
        assert spec_digest(SPEC, 1, 4) == base
        assert spec_digest(dataclasses.replace(SPEC, master_seed=1), 1, 4) != base
        assert spec_digest(dataclasses.replace(SPEC, backend="numpy"), 1, 4) != base
        assert spec_digest(dataclasses.replace(SPEC, campaigns=5), 1, 5) != base
        assert spec_digest(SPEC, 2, 2) != base

    def test_aggregation_from_loaded_chunks_matches(self, tmp_path):
        report, scheduler = run_with_store(tmp_path, "store")
        rebuilt = FleetReport()
        for index in scheduler.checkpoint.completed_chunks():
            for summary in scheduler.checkpoint.load(index):
                rebuilt.add(summary)
        assert rebuilt.canonical_json() == report.canonical_json()
