"""Fast-session equivalence: run_session == FastDiagnosisScheme.diagnose.

The fast session must reproduce the reference session *exactly* -- report
fields, per-memory failure-record lists (order included), memory end
state and clocking -- across heterogeneous banks (wrap-around), both
serial delivery orders and peripheral-fault fallbacks.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import DiagnosisCampaign
from repro.core.scheme import FastDiagnosisScheme
from repro.engine.session import run_session
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.faults.stuck_at import StuckAtFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.soc.case_study import case_study_soc

GEOMETRIES = [
    MemoryGeometry(16, 8, "wide"),
    MemoryGeometry(8, 5, "narrow"),
    MemoryGeometry(5, 3, "tiny"),  # 16 % 5 != 0: exercises partial wrap blocks
]


def build_bank(seed: int, defect_rate: float = 0.04) -> MemoryBank:
    bank = MemoryBank([SRAM(geometry) for geometry in GEOMETRIES])
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, defect_rate, rng=seed + index)
        injector.inject(memory, population.faults)
    return bank


def assert_sessions_equal(reference, fast, reference_bank, fast_bank):
    assert fast.failures == reference.failures
    assert fast.cycles == reference.cycles
    assert fast.pause_ns == reference.pause_ns
    assert fast.deliveries == reference.deliveries
    assert fast.nwrc_ops == reference.nwrc_ops
    assert fast.aborted_early == reference.aborted_early
    assert fast.time_ns == reference.time_ns
    for reference_memory, fast_memory in zip(reference_bank, fast_bank):
        assert fast_memory.dump() == reference_memory.dump()
        assert fast_memory.timebase.cycles == reference_memory.timebase.cycles


class TestSessionEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_heterogeneous_bank(self, seed):
        reference_bank = build_bank(seed)
        fast_bank = build_bank(seed)
        reference = FastDiagnosisScheme(reference_bank).diagnose()
        fast = run_session(FastDiagnosisScheme(fast_bank), backend="numpy")
        assert_sessions_equal(reference, fast, reference_bank, fast_bank)

    @pytest.mark.parametrize("backend", ["numpy", "batched"])
    def test_lsb_first_coverage_loss_scenario(self, backend):
        # The flawed LSB-first delivery makes fault-free narrow memories
        # mis-compare; the vector compare paths must reproduce every
        # record -- including the batched tier, whose clean-word tracker
        # may only skip compares whose expectation matches the delivered
        # (not the correct) pattern.
        reference_bank = build_bank(1)
        fast_bank = build_bank(1)
        reference = FastDiagnosisScheme(reference_bank, msb_first=False).diagnose()
        fast = run_session(
            FastDiagnosisScheme(fast_bank, msb_first=False), backend=backend
        )
        assert_sessions_equal(reference, fast, reference_bank, fast_bank)

    def test_decoder_faulty_memory_uses_slow_path(self):
        def build():
            bank = build_bank(2)
            bank[0].decoder.break_address(3)
            return bank

        reference_bank, fast_bank = build(), build()
        reference = FastDiagnosisScheme(reference_bank).diagnose()
        fast = run_session(FastDiagnosisScheme(fast_bank), backend="numpy")
        assert_sessions_equal(reference, fast, reference_bank, fast_bank)

    def test_reference_backend_delegates_to_diagnose(self):
        bank = build_bank(3)
        report = run_session(FastDiagnosisScheme(bank), backend="reference")
        twin = build_bank(3)
        assert report.failures == FastDiagnosisScheme(twin).diagnose().failures

    def test_trigger_handshake_counter_matches_reference(self):
        reference_scheme = FastDiagnosisScheme(build_bank(7))
        fast_scheme = FastDiagnosisScheme(build_bank(7))
        reference_scheme.diagnose()
        run_session(fast_scheme, backend="numpy")
        assert (
            fast_scheme.trigger.triggers_issued
            == reference_scheme.trigger.triggers_issued
        )
        assert not fast_scheme.trigger.busy

    def test_unrouted_nwrtm_raises_like_reference(self):
        # drf_screening=False with an NWRC algorithm is an invalid config
        # the reference rejects; the fast path must not mask it.
        def fresh():
            return FastDiagnosisScheme(build_bank(5), drf_screening=False)

        with pytest.raises(ValueError, match="NWRTM"):
            fresh().diagnose()
        with pytest.raises(ValueError, match="NWRTM"):
            run_session(fresh(), backend="numpy")

    def test_custom_backend_rejected_explicitly(self):
        from repro.engine.backends import MarchBackend

        class Custom(MarchBackend):
            name = "custom"

        with pytest.raises(ValueError, match="run_session supports"):
            run_session(FastDiagnosisScheme(build_bank(6)), backend=Custom())

    def test_repeated_sessions_accumulate_counters_identically(self):
        # deliveries/nwrc_ops are cumulative scheme counters in the
        # reference; the fast path must preserve that quirk.
        reference_scheme = FastDiagnosisScheme(build_bank(4))
        fast_scheme = FastDiagnosisScheme(build_bank(4))
        reference_scheme.diagnose()
        second_reference = reference_scheme.diagnose()
        run_session(fast_scheme, backend="numpy")
        second_fast = run_session(fast_scheme, backend="numpy")
        assert second_fast.deliveries == second_reference.deliveries
        assert second_fast.nwrc_ops == second_reference.nwrc_ops
        assert second_fast.failures == second_reference.failures


class TestCampaignBackendParity:
    @pytest.mark.parametrize("seed", range(2))
    def test_campaign_results_identical(self, seed):
        soc = case_study_soc(memories=3)
        reference = DiagnosisCampaign(
            soc, defect_rate=0.004, seed=seed, backend="reference"
        ).run()
        fast = DiagnosisCampaign(
            soc, defect_rate=0.004, seed=seed, backend="numpy"
        ).run()
        assert fast.proposed.failures == reference.proposed.failures
        assert fast.localization_rate == reference.localization_rate
        assert fast.reduction_factor == reference.reduction_factor
        assert fast.verification_passed == reference.verification_passed
        assert fast.repair.to_dict() == reference.repair.to_dict()

    def test_auto_backend_runs(self):
        soc = case_study_soc(memories=2)
        report = DiagnosisCampaign(
            soc, defect_rate=0.004, seed=0, backend="auto"
        ).run(include_baseline=False, repair=False)
        assert report.proposed is not None
        assert report.localization_rate == 1.0

    def test_single_localized_fault_repairs_cleanly(self):
        soc = case_study_soc(memories=2)
        campaign = DiagnosisCampaign(soc, defect_rate=0.0, seed=0, backend="numpy")
        bank, injector = campaign._faulty_bank()
        assert injector.total == 0

        # End-to-end with one hand-placed fault through the public path.
        scheme = FastDiagnosisScheme(bank)
        StuckAtFault(CellRef(7, 3), value=1).attach(bank[0])
        report = run_session(scheme, backend="numpy")
        assert report.failing_memories() == [bank[0].name]
        assert CellRef(7, 3) in report.detected_cells(bank[0].name)
