"""Unit tests for the fleet-batched tier: planner, packing, dispatch."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.engine.backends import available_backends, get_backend
from repro.engine.batched import (
    BatchedBackend,
    batched_backend_pays_off,
    geometry_buckets,
    plan_session_buckets,
    run_batched_session,
)
from repro.engine.fleet import FleetSpec, FleetScheduler, plan_spec_backend
from repro.engine.packing import pack_bank
from repro.engine.session import run_session
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.scenarios.spec import ScenarioSpec


def bank_of(*shapes: tuple[int, int], trace_last: bool = False) -> MemoryBank:
    memories = [
        SRAM(MemoryGeometry(words, bits, f"m{i}"), trace=trace_last and i == len(shapes) - 1)
        for i, (words, bits) in enumerate(shapes)
    ]
    return MemoryBank(memories)


class TestGeometryBuckets:
    def test_empty_input_yields_no_buckets(self):
        assert geometry_buckets([]) == {}
        buckets, fallback = plan_session_buckets([])
        assert buckets == [] and fallback == []

    def test_single_memory_bucket(self):
        buckets = geometry_buckets([MemoryGeometry(8, 4, "solo")])
        assert buckets == {(8, 4): [0]}

    def test_mixed_geometry_chunks_group_by_shape(self):
        geometries = [
            MemoryGeometry(16, 8, "a"),
            MemoryGeometry(8, 4, "b"),
            MemoryGeometry(16, 8, "c"),
            MemoryGeometry(8, 4, "d"),
            MemoryGeometry(4, 2, "e"),
        ]
        buckets = geometry_buckets(geometries)
        assert buckets == {(16, 8): [0, 2], (8, 4): [1, 3], (4, 2): [4]}

    def test_bucket_order_follows_first_appearance(self):
        buckets = geometry_buckets(
            [MemoryGeometry(4, 2, "x"), MemoryGeometry(8, 4, "y"), MemoryGeometry(4, 2, "z")]
        )
        assert list(buckets) == [(4, 2), (8, 4)]

    def test_pays_off_requires_a_shared_shape(self):
        assert not batched_backend_pays_off([MemoryGeometry(8, 4, "a")])
        assert not batched_backend_pays_off(
            [MemoryGeometry(8, 4, "a"), MemoryGeometry(16, 4, "b")]
        )
        assert batched_backend_pays_off(
            [MemoryGeometry(8, 4, "a"), MemoryGeometry(8, 4, "b")]
        )


class TestSessionBucketPlanner:
    def test_all_capable_memories_bucketed(self):
        bank = bank_of((16, 8), (8, 4), (16, 8))
        buckets, fallback = plan_session_buckets(bank)
        assert fallback == []
        assert [(b.words, b.bits, b.indices) for b in buckets] == [
            (16, 8, (0, 2)),
            (8, 4, (1,)),
        ]

    def test_traced_memory_falls_back(self):
        bank = bank_of((16, 8), (16, 8), trace_last=True)
        buckets, fallback = plan_session_buckets(bank)
        assert fallback == [1]
        assert [b.indices for b in buckets] == [(0,)]

    def test_decoder_faulty_memory_falls_back(self):
        bank = bank_of((16, 8), (16, 8))
        bank[1].decoder.remap_address(3, 5)
        buckets, fallback = plan_session_buckets(bank)
        assert fallback == [1]
        assert [b.indices for b in buckets] == [(0,)]


class TestPackBank:
    def test_rejects_empty_and_mixed_buckets(self):
        with pytest.raises(ValueError, match="at least one memory"):
            pack_bank([])
        with pytest.raises(ValueError, match="same-geometry"):
            pack_bank([SRAM(MemoryGeometry(8, 4)), SRAM(MemoryGeometry(8, 5))])

    def test_stacked_shapes_and_masks(self):
        bank = bank_of((8, 4), (8, 4))
        population = sample_population(bank[0].geometry, 0.2, rng=1)
        FaultInjector().inject(bank[0], population.faults)
        states, clean, dirty, lanes = pack_bank(list(bank))
        assert states.shape == (2, 8, 1) and lanes == 1
        assert dirty[0].any() and not dirty[1].any()
        assert (clean == ~dirty).all()


class TestRegistryAndDispatch:
    def test_batched_backend_registered(self):
        assert "batched" in available_backends()
        assert isinstance(get_backend("batched"), BatchedBackend)

    def test_run_session_dispatches_batched(self):
        # Fresh identical banks per backend (sessions mutate state).
        def fresh():
            b = bank_of((12, 6), (12, 6), (8, 4))
            FaultInjector().inject(
                b[0], sample_population(b[0].geometry, 0.1, rng=7).faults
            )
            return FastDiagnosisScheme(b, period_ns=10.0)

        via_name = run_session(fresh(), backend="batched")
        direct = run_batched_session(fresh())
        numpy_report = run_session(fresh(), backend="numpy")
        assert via_name.failures == direct.failures == numpy_report.failures
        assert via_name.cycles == direct.cycles == numpy_report.cycles
        assert via_name.time_ns == numpy_report.time_ns

    def test_fallback_memory_rides_along_with_buckets(self):
        # A traced memory takes the per-memory path while its bucketed
        # neighbours run stacked; the combined report must still match
        # the reference exactly.
        def fresh(trace_last):
            bank = bank_of((10, 5), (10, 5), (10, 5), trace_last=trace_last)
            FaultInjector().inject(
                bank[0], sample_population(bank[0].geometry, 0.15, rng=3).faults
            )
            FaultInjector().inject(
                bank[2], sample_population(bank[2].geometry, 0.15, rng=4).faults
            )
            return bank

        reference = FastDiagnosisScheme(fresh(trace_last=True)).diagnose()
        batched = run_batched_session(FastDiagnosisScheme(fresh(trace_last=True)))
        assert batched.failures == reference.failures
        assert batched.cycles == reference.cycles
        assert batched.time_ns == reference.time_ns

    def test_unsupported_session_features_delegate(self):
        # bit_accurate is outside the fast-path contract: the batched
        # backend must fall back to scheme.diagnose exactly like numpy.
        scheme = FastDiagnosisScheme(bank_of((6, 3)))
        batched = run_session(scheme, backend="batched", bit_accurate=True)
        reference = FastDiagnosisScheme(bank_of((6, 3))).diagnose(bit_accurate=True)
        assert batched.failures == reference.failures
        assert batched.cycles == reference.cycles


class TestAutoPlanning:
    def test_auto_upgrades_to_batched_for_shared_shapes(self):
        spec = FleetSpec(soc="case-study", memories=8, campaigns=2, backend="auto")
        planned = plan_spec_backend(spec)
        assert planned.backend == "batched"
        assert FleetScheduler(spec, workers=1).spec.backend == "batched"

    def test_auto_keeps_numpy_for_all_distinct_shapes(self):
        spec = FleetSpec(
            soc="case-study", memories=4, campaigns=2, backend="auto"
        )
        geometries = spec.build_soc().geometries
        if batched_backend_pays_off(geometries):
            pytest.skip("case-study mix shares shapes at this size")
        assert plan_spec_backend(spec).backend == "auto"

    def test_explicit_backend_is_untouched(self):
        spec = FleetSpec(soc="case-study", memories=8, campaigns=2, backend="numpy")
        assert plan_spec_backend(spec) is spec

    def test_scenario_spec_plans_too(self):
        spec = ScenarioSpec(campaigns=2, memories=8, backend="auto")
        planned = plan_spec_backend(spec)
        assert planned.backend == "batched"
        assert dataclasses.asdict(planned) == {
            **dataclasses.asdict(spec),
            "backend": "batched",
        }

    def test_spec_like_objects_pass_through(self):
        class Minimal:
            campaigns = 3

        spec = Minimal()
        assert plan_spec_backend(spec) is spec
