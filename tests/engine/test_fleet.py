"""Fleet scheduler determinism, streaming aggregation and pool hygiene."""

from __future__ import annotations

import math
import multiprocessing
import statistics
import time

import pytest

from repro.engine.aggregate import (
    REDUCTION_BUCKETS,
    CampaignSummary,
    FleetReport,
    StreamingStats,
    bucket_label,
)
from repro.engine.fleet import (
    FleetScheduler,
    FleetSpec,
    chunked_indices,
    reorder_chunks,
    run_campaign,
    run_chunk,
    run_fleet,
)
from repro.util.rng import derive_seed

SPEC = FleetSpec(
    soc="case-study",
    memories=2,
    campaigns=4,
    defect_rate=0.004,
    master_seed=7,
    backend="auto",
)


def comparable(report: FleetReport) -> dict:
    # Run metadata (wall clock, plan-cache traffic) varies with worker
    # layout; only the deterministic result content is compared.
    payload = report.to_json_dict()
    payload.pop("elapsed_s")
    payload.pop("campaigns_per_sec")
    payload.pop("plan_cache")
    return payload


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_per_index(self):
        seeds = {derive_seed(0, index) for index in range(100)}
        assert len(seeds) == 100

    def test_distinct_per_master(self):
        assert derive_seed(0, 5) != derive_seed(1, 5)

    def test_spec_exposes_per_campaign_seeds(self):
        assert SPEC.campaign_seed(2) == derive_seed(7, 2)


class TestChunking:
    def test_partition_covers_everything_once(self):
        chunks = chunked_indices(10, 3)
        assert chunks == [(0, 1, 2), (3, 4, 5), (6, 7, 8), (9,)]

    def test_single_chunk(self):
        assert chunked_indices(3, 10) == [(0, 1, 2)]

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            chunked_indices(3, 0)


class TestSchedulerDeterminism:
    def test_inline_runs_are_reproducible(self):
        first = run_fleet(SPEC, workers=1)
        second = run_fleet(SPEC, workers=1)
        assert comparable(first) == comparable(second)
        assert first.campaigns == SPEC.campaigns

    def test_chunk_size_does_not_change_results(self):
        whole = run_fleet(SPEC, workers=1, chunk_size=4)
        minced = run_fleet(SPEC, workers=1, chunk_size=1)
        assert comparable(whole) == comparable(minced)

    def test_worker_pool_matches_inline(self):
        inline = run_fleet(SPEC, workers=1)
        pooled = run_fleet(SPEC, workers=2, chunk_size=1)
        assert comparable(pooled) == comparable(inline)

    def test_campaign_summary_independent_of_position(self):
        # The summary of campaign i depends only on (spec, i).
        direct = run_campaign(SPEC, 2)
        assert direct.seed == SPEC.campaign_seed(2)
        assert direct.index == 2
        assert direct.localization_rate == run_campaign(SPEC, 2).localization_rate

    def test_worker_count_resolution(self):
        assert FleetScheduler(SPEC, workers=0).workers == 1
        assert FleetScheduler(SPEC, workers=3).workers == 3


def _chunk_summaries(chunks: list[tuple[int, ...]]) -> list[list[CampaignSummary]]:
    """Distinguishable synthetic summaries, one list per chunk."""
    return [
        [
            CampaignSummary(
                index=index,
                seed=1000 + index,
                soc_name="ooo",
                injected_faults=index,
                localization_rate=1.0,
                total_failures=0,
                reduction_factor=float(10 + index),
            )
            for index in chunk
        ]
        for chunk in chunks
    ]


class TestOutOfOrderChunks:
    """The ordering buffer between pool completion and aggregation.

    Workers may finish chunks in any order (``imap_unordered``); the
    aggregation contract is that summaries reach the report in campaign
    order regardless, so fleet statistics are identical to an inline run.
    """

    CHUNKS = chunked_indices(10, 3)  # [(0,1,2), (3,4,5), (6,7,8), (9,)]

    def shuffled(self, order):
        summaries = _chunk_summaries(self.CHUNKS)
        return [(i, summaries[i]) for i in order]

    @pytest.mark.parametrize(
        "completion_order",
        [(3, 2, 1, 0), (2, 0, 3, 1), (1, 3, 0, 2), (0, 1, 2, 3)],
    )
    def test_shuffled_completions_restore_campaign_order(self, completion_order):
        ordered = list(
            reorder_chunks(iter(self.shuffled(completion_order)), len(self.CHUNKS))
        )
        flattened = [summary.index for chunk in ordered for summary in chunk]
        assert flattened == list(range(10))

    @pytest.mark.parametrize("completion_order", [(3, 1, 0, 2), (2, 0, 3, 1)])
    def test_aggregation_matches_in_order_delivery(self, completion_order):
        in_order = FleetReport()
        for chunk in _chunk_summaries(self.CHUNKS):
            for summary in chunk:
                in_order.add(summary)
        out_of_order = FleetReport()
        for chunk in reorder_chunks(
            iter(self.shuffled(completion_order)), len(self.CHUNKS)
        ):
            for summary in chunk:
                out_of_order.add(summary)
        assert out_of_order.to_json_dict() == in_order.to_json_dict()

    def test_buffer_flushes_as_gaps_fill(self):
        # Chunk 0 last: everything must be buffered, then flushed at once.
        stream = reorder_chunks(iter(self.shuffled((3, 2, 1, 0))), len(self.CHUNKS))
        first = next(stream)
        assert [s.index for s in first] == [0, 1, 2]
        assert [s.index for chunk in stream for s in chunk] == list(range(3, 10))

    def test_duplicate_chunk_rejected(self):
        summaries = _chunk_summaries(self.CHUNKS)
        completions = [(0, summaries[0]), (1, summaries[1]), (1, summaries[1])]
        with pytest.raises(ValueError, match="completed twice"):
            list(reorder_chunks(iter(completions), len(self.CHUNKS)))

    def test_missing_chunk_rejected(self):
        completions = self.shuffled((0, 2, 3))
        with pytest.raises(ValueError, match="missing chunk results"):
            list(reorder_chunks(iter(completions), len(self.CHUNKS)))

    def test_out_of_range_chunk_rejected(self):
        completions = [(7, [])]
        with pytest.raises(ValueError, match="outside"):
            list(reorder_chunks(iter(completions), len(self.CHUNKS)))

    def test_pooled_unordered_execution_matches_inline(self):
        # End to end through the real pool: the imap_unordered +
        # reorder_chunks path must agree with inline execution exactly.
        inline = run_fleet(SPEC, workers=1, chunk_size=1)
        pooled = run_fleet(SPEC, workers=3, chunk_size=1)
        assert comparable(pooled) == comparable(inline)


def _boom_chunk_runner(spec, indices):
    """Module-level (picklable) runner that fails on the chunk holding 2."""
    if 2 in indices:
        raise RuntimeError("chunk runner boom")
    return run_chunk(spec, indices)


def _reversed_finish_chunk_runner(spec, indices):
    """Picklable runner whose chunks finish in reverse submission order.

    Later chunks sleep less, so ``imap_unordered`` hands them back first
    and the scheduler's ordering buffer does real work.
    """
    time.sleep(0.03 * (spec.campaigns - 1 - indices[0]))
    return [
        CampaignSummary(
            index=index,
            seed=spec.campaign_seed(index),
            soc_name="sleepy",
            injected_faults=0,
            localization_rate=1.0,
            total_failures=0,
        )
        for index in indices
    ]


class TestProgressCallback:
    """The (done, total) contract: exactly once per chunk, monotone.

    Regression tests: progress must never regress, repeat, skip or report
    before the chunk's summaries were aggregated -- even when the pool
    completes chunks out of order or a resume serves chunks from disk.
    """

    def collect(self, **scheduler_kwargs) -> list[tuple[int, int]]:
        calls: list[tuple[int, int]] = []
        scheduler = FleetScheduler(SPEC, **scheduler_kwargs)
        scheduler.run(progress=lambda done, total: calls.append((done, total)))
        return calls

    def test_inline_progress_once_per_chunk(self):
        calls = self.collect(workers=1, chunk_size=1)
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_chunked_progress_counts_campaigns(self):
        calls = self.collect(workers=1, chunk_size=3)
        assert calls == [(3, 4), (4, 4)]

    def test_pooled_out_of_order_completion_stays_monotone(self):
        calls = self.collect(
            workers=4, chunk_size=1, chunk_runner=_reversed_finish_chunk_runner
        )
        # Chunks complete roughly in reverse; delivery must not.
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_resume_reports_loaded_chunks_too(self, tmp_path):
        store = tmp_path / "store"
        full = self.collect(workers=1, chunk_size=1, checkpoint=store)
        resumed = self.collect(
            workers=1, chunk_size=1, checkpoint=store, resume=True
        )
        # A fully-persisted resume replays every chunk from disk; the
        # progress stream is indistinguishable from the original run's.
        assert resumed == full == [(1, 4), (2, 4), (3, 4), (4, 4)]


def _assert_no_orphaned_workers(before: set) -> None:
    """The pool's processes must all be reaped shortly after the failure."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leftover = {p for p in multiprocessing.active_children() if p not in before}
        if not leftover:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned pool workers: {leftover}")


class TestPoolTeardown:
    """Worker pools are closed and joined on every exit path.

    Regression tests for the teardown leak: a failing chunk runner (or a
    consumer abandoning the result stream) used to leave the pool to the
    garbage collector, orphaning its workers.
    """

    def test_failing_chunk_runner_does_not_orphan_workers(self):
        before = set(multiprocessing.active_children())
        scheduler = FleetScheduler(
            SPEC, workers=2, chunk_size=1, chunk_runner=_boom_chunk_runner
        )
        with pytest.raises(RuntimeError, match="chunk runner boom"):
            scheduler.run()
        _assert_no_orphaned_workers(before)

    def test_failing_inline_runner_also_raises(self):
        scheduler = FleetScheduler(
            SPEC, workers=1, chunk_size=1, chunk_runner=_boom_chunk_runner
        )
        with pytest.raises(RuntimeError, match="chunk runner boom"):
            scheduler.run()

    def test_raising_progress_callback_does_not_orphan_workers(self):
        before = set(multiprocessing.active_children())

        def bail_out(done, total):
            raise KeyboardInterrupt("operator stopped watching")

        scheduler = FleetScheduler(SPEC, workers=2, chunk_size=1)
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(progress=bail_out)
        _assert_no_orphaned_workers(before)

    def test_successful_pooled_run_leaves_no_workers(self):
        before = set(multiprocessing.active_children())
        run_fleet(SPEC, workers=2, chunk_size=1)
        _assert_no_orphaned_workers(before)


class TestStreamingStats:
    def test_matches_statistics_module(self):
        values = [3.0, 1.5, 8.25, -2.0, 4.75, 0.5]
        stats = StreamingStats()
        for value in values:
            stats.add(value)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.std == pytest.approx(statistics.pstdev(values))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_merge_equals_sequential(self):
        values = [1.0, 2.0, 7.0, -1.0, 3.5, 9.0, 0.0]
        left, right, sequential = StreamingStats(), StreamingStats(), StreamingStats()
        for value in values[:3]:
            left.add(value)
        for value in values[3:]:
            right.add(value)
        for value in values:
            sequential.add(value)
        left.merge(right)
        assert left.count == sequential.count
        assert left.mean == pytest.approx(sequential.mean)
        assert left.std == pytest.approx(sequential.std)
        assert left.minimum == sequential.minimum
        assert left.maximum == sequential.maximum

    def test_empty_stats_serialize_to_none(self):
        empty = StreamingStats()
        assert empty.to_dict() == {
            "count": 0, "mean": None, "std": None, "min": None, "max": None,
        }
        assert math.isinf(empty.minimum)


class TestFleetReport:
    @staticmethod
    def summary(index: int, reduction: float | None, verified: bool | None) -> CampaignSummary:
        return CampaignSummary(
            index=index,
            seed=index,
            soc_name="test",
            injected_faults=10,
            localization_rate=0.9,
            total_failures=20,
            proposed_time_ns=1e6,
            baseline_time_ns=None if reduction is None else reduction * 1e6,
            reduction_factor=reduction,
            repaired_words=4,
            fully_repaired=verified,
            verification_passed=verified,
        )

    def test_histogram_buckets(self):
        report = FleetReport()
        report.add(self.summary(0, 5.0, True))
        report.add(self.summary(1, 90.0, True))
        report.add(self.summary(2, 500.0, False))
        report.add(self.summary(3, None, None))
        histogram = report.to_json_dict()["reduction_histogram"]
        assert histogram[bucket_label(0)] == 1  # < 10
        assert histogram[bucket_label(4)] == 1  # 75 - 100
        assert histogram[bucket_label(len(REDUCTION_BUCKETS))] == 1  # >= 300
        assert report.reduction.count == 3
        assert report.campaigns == 4

    def test_yield_rate(self):
        report = FleetReport()
        report.add(self.summary(0, 80.0, True))
        report.add(self.summary(1, 80.0, False))
        report.add(self.summary(2, 80.0, None))
        assert report.yield_rate == pytest.approx(0.5)
        assert report.verified_total == 2

    def test_yield_rate_none_without_verification(self):
        report = FleetReport()
        report.add(self.summary(0, 80.0, None))
        assert report.yield_rate is None

    def test_summary_lines_render(self):
        report = FleetReport()
        report.add(self.summary(0, 84.0, True))
        report.elapsed_s = 2.0
        text = "\n".join(report.summary_lines())
        assert "1 campaigns" in text
        assert "reduction R" in text
        assert "yield" in text

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FleetSpec(soc="nonsense")
        with pytest.raises(ValueError):
            FleetSpec(campaigns=0)
        with pytest.raises(ValueError):
            FleetSpec(defect_rate=1.5)


class TestStreamingStatsMergeEdges:
    """Empty/singleton merges: no ZeroDivisionError, no NaN, exact symmetry."""

    def test_empty_merge_empty_is_identity(self):
        left, right = StreamingStats(), StreamingStats()
        left.merge(right)
        assert left.count == 0
        assert left.mean == 0.0 and left.m2 == 0.0
        assert math.isinf(left.minimum) and math.isinf(left.maximum)
        assert left.std == 0.0  # no sqrt(NaN), no division by zero

    def test_empty_merge_populated_copies_exactly(self):
        left, right = StreamingStats(), StreamingStats()
        for value in (2.0, 5.0, 11.0):
            right.add(value)
        left.merge(right)
        assert left.to_dict() == right.to_dict()
        assert not math.isnan(left.mean)

    def test_populated_merge_empty_is_noop(self):
        left, right = StreamingStats(), StreamingStats()
        for value in (2.0, 5.0, 11.0):
            left.add(value)
        before = left.to_dict()
        left.merge(right)
        assert left.to_dict() == before
        assert not math.isnan(left.mean) and not math.isnan(left.std)

    def test_singleton_merge_singleton(self):
        left, right = StreamingStats(), StreamingStats()
        left.add(3.0)
        right.add(7.0)
        left.merge(right)
        assert left.count == 2
        assert left.mean == pytest.approx(5.0)
        assert left.std == pytest.approx(2.0)
        assert (left.minimum, left.maximum) == (3.0, 7.0)

    def test_merge_is_bitwise_swap_symmetric(self):
        a, b = StreamingStats(), StreamingStats()
        for value in (0.1, 0.2, 0.30000000000000004, -7.25):
            a.add(value)
        for value in (1e16, 1.0, -1e16):
            b.add(value)
        ab = StreamingStats.from_state(a.state_dict())
        ab.merge(b)
        ba = StreamingStats.from_state(b.state_dict())
        ba.merge(a)
        # Bit-for-bit, not approx: windowed aggregation relies on it.
        assert ab.state_dict() == ba.state_dict()

    def test_variance_clamps_cancellation_noise(self):
        stats = StreamingStats(count=3, mean=1.0, m2=-1e-18, minimum=1.0, maximum=1.0)
        assert stats.variance == 0.0
        assert stats.std == 0.0  # must not raise math domain error

    def test_state_roundtrip_empty_and_populated(self):
        empty = StreamingStats()
        assert StreamingStats.from_state(empty.state_dict()).to_dict() == empty.to_dict()
        stats = StreamingStats()
        for value in (1.5, -2.25, 9.0):
            stats.add(value)
        restored = StreamingStats.from_state(stats.state_dict())
        assert restored.state_dict() == stats.state_dict()


class TestZeroDenominatorRates:
    """Rate aggregates on empty reports: count ratios None, throughput 0.0."""

    def test_throughput_is_zero_without_elapsed(self):
        report = FleetReport()
        assert report.campaigns_per_sec == 0.0
        report.elapsed_s = 0.0
        assert report.campaigns_per_sec == 0.0

    def test_count_ratios_are_none_on_empty_denominators(self):
        report = FleetReport()
        assert report.yield_rate is None
        assert report.retest_convergence is None
        assert report.intermittent_detection_rate is None
        assert report.plan_cache_hit_rate is None

    def test_empty_report_serializes_without_error(self):
        payload = FleetReport().to_json_dict()
        assert payload["campaigns"] == 0
        deterministic = FleetReport().deterministic_dict()
        assert "elapsed_s" not in deterministic


def _first_chunk_only(stream):
    """Consume exactly one chunk from a scheduler stream, then abandon it."""
    for chunk in stream:
        return list(chunk)
    return []


class TestEarlyConsumerExit:
    """A consumer breaking out of the chunk stream must shut down cleanly."""

    def test_inline_stream_early_break(self):
        scheduler = FleetScheduler(SPEC, workers=1, chunk_size=1)
        stream = scheduler.stream()
        first = _first_chunk_only(stream)
        stream.close()
        assert [summary.index for summary in first] == [0]

    def test_pooled_stream_early_break_leaves_no_workers(self):
        before = set(multiprocessing.active_children())
        scheduler = FleetScheduler(SPEC, workers=2, chunk_size=1)
        stream = scheduler.stream()
        first = _first_chunk_only(stream)
        stream.close()
        assert [summary.index for summary in first] == [0]
        _assert_no_orphaned_workers(before)

    def test_stream_yields_chunks_in_submission_order(self):
        scheduler = FleetScheduler(
            SPEC, workers=2, chunk_size=1,
            chunk_runner=_reversed_finish_chunk_runner,
        )
        indices = [s.index for chunk in scheduler.stream() for s in chunk]
        assert indices == list(range(SPEC.campaigns))

    def test_full_stream_consumption_matches_run(self):
        streamed = FleetReport()
        scheduler = FleetScheduler(SPEC, workers=1, chunk_size=2)
        for chunk in scheduler.stream():
            for summary in chunk:
                streamed.add(summary)
        batch = run_fleet(SPEC, workers=1, chunk_size=2)
        assert streamed.deterministic_dict() == batch.deterministic_dict()

    def test_premature_pool_exhaustion_raises_clear_error(self, monkeypatch):
        scheduler = FleetScheduler(SPEC, workers=1, chunk_size=1)

        def dead_pool(pending, chunks):
            # A pool that stops producing before any chunk comes back.
            return
            yield  # pragma: no cover - makes this a (closable) generator

        monkeypatch.setattr(scheduler, "_execute_pending", dead_pool)
        stream = scheduler._stream_chunks(chunked_indices(SPEC.campaigns, 1))
        # The scheduler names the head-of-line chunk and the delivery
        # counts instead of surfacing PEP 479's opaque "generator raised
        # StopIteration".
        with pytest.raises(
            RuntimeError,
            match=r"worker pool ended early: completed 0 of 4 expected "
            r"chunk results; head-of-line chunk 0",
        ):
            next(stream)

    def test_exhausted_ordering_buffer_raises_clear_error(self, monkeypatch):
        import repro.engine.fleet as fleet_module

        original = fleet_module.reorder_chunks

        def one_then_stop(completions, expected):
            # An ordering buffer that silently ends after one chunk --
            # the defensive guard behind it must raise, not StopIteration.
            for item in original(completions, expected):
                yield item
                return

        scheduler = FleetScheduler(SPEC, workers=1, chunk_size=1)
        monkeypatch.setattr(fleet_module, "reorder_chunks", one_then_stop)
        stream = scheduler._stream_chunks(chunked_indices(SPEC.campaigns, 1))
        next(stream)
        with pytest.raises(RuntimeError, match="worker pool ended early"):
            next(stream)
