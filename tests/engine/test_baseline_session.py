"""Baseline-session equivalence: run_baseline_session == scheme.diagnose.

The fast baseline runner must reproduce the pure-Python iterate-repair
flow *exactly* -- iteration count, localization records (order included),
missed-fault list, final memory state and clocking -- across the fault
library, fallback configurations and both execution modes.
"""

from __future__ import annotations

import pytest

from repro.baseline.scheme import HuangJoneScheme
from repro.engine.backends import MarchBackend, NumpyBackend, ReferenceBackend
from repro.engine.baseline_session import run_baseline_session
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from tests.engine.test_backends import FAULT_LIBRARY
from tests.engine.test_backends import GEOMETRY as LIBRARY_GEOMETRY

GEOMETRY = MemoryGeometry(12, 6, "bl")


def build_sampled_bank(seed: int, defect_rate: float = 0.05):
    bank = MemoryBank(
        [SRAM(GEOMETRY), SRAM(MemoryGeometry(8, 4, "bl2"))]
    )
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, defect_rate, rng=seed + index)
        injector.inject(memory, population.faults)
    return bank, injector


def assert_baseline_equal(reference, fast, reference_bank, fast_bank):
    assert fast.iterations == reference.iterations
    assert fast.localized == reference.localized
    assert [(name, fault.describe()) for name, fault in fast.missed] == [
        (name, fault.describe()) for name, fault in reference.missed
    ]
    assert fast.include_drf == reference.include_drf
    assert fast.controller_words == reference.controller_words
    assert fast.controller_bits == reference.controller_bits
    assert fast.cycles == reference.cycles
    assert fast.time_ns == reference.time_ns
    for reference_memory, fast_memory in zip(reference_bank, fast_bank):
        assert fast_memory.dump() == reference_memory.dump()
        assert fast_memory.timebase.cycles == reference_memory.timebase.cycles


class TestFaultLibraryEquivalence:
    """The runner is bit-exact for every cell-fault class in the library."""

    @pytest.mark.parametrize(
        "label,factory", FAULT_LIBRARY, ids=[f[0] for f in FAULT_LIBRARY]
    )
    def test_single_fault(self, label, factory):
        def build():
            memory = SRAM(LIBRARY_GEOMETRY)
            injector = FaultInjector()
            injector.inject(memory, [factory()])
            return MemoryBank([memory]), injector

        reference_bank, reference_injector = build()
        fast_bank, fast_injector = build()
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert_baseline_equal(reference, fast, reference_bank, fast_bank)

    def test_whole_library_at_once(self):
        def build():
            memory = SRAM(LIBRARY_GEOMETRY)
            injector = FaultInjector()
            injector.inject(memory, [factory() for _, factory in FAULT_LIBRARY])
            return MemoryBank([memory]), injector

        reference_bank, reference_injector = build()
        fast_bank, fast_injector = build()
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert reference.localized  # guard against a vacuous comparison
        assert_baseline_equal(reference, fast, reference_bank, fast_bank)


class TestBitAccurateEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_sampled_population(self, seed):
        reference_bank, reference_injector = build_sampled_bank(seed)
        fast_bank, fast_injector = build_sampled_bank(seed)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert_baseline_equal(reference, fast, reference_bank, fast_bank)

    def test_max_iterations_cutoff_matches(self):
        def build():
            memory = SRAM(GEOMETRY)
            injector = FaultInjector()
            injector.inject(
                memory, [StuckAtFault(CellRef(w, 1), 1) for w in range(6)]
            )
            return MemoryBank([memory]), injector

        reference_bank, reference_injector = build()
        fast_bank, fast_injector = build()
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True, max_iterations=2
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
            max_iterations=2,
        )
        assert reference.iterations == 2
        assert_baseline_equal(reference, fast, reference_bank, fast_bank)

    def test_decoder_faulty_memory_falls_back_and_matches(self):
        def build():
            faulty = SRAM(GEOMETRY)
            faulty.decoder.remap_address(2, 4)
            clean = SRAM(MemoryGeometry(8, 4, "v"))
            injector = FaultInjector()
            injector.inject(faulty, [StuckAtFault(CellRef(1, 1), 1)])
            injector.inject(clean, [TransitionFault(CellRef(3, 2), rising=True)])
            return MemoryBank([faulty, clean]), injector

        assert not NumpyBackend().supports_baseline(build()[0][0])
        reference_bank, reference_injector = build()
        fast_bank, fast_injector = build()
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="numpy",
            bit_accurate=True,
        )
        assert_baseline_equal(reference, fast, reference_bank, fast_bank)

    def test_fault_free_bank_localizes_nothing(self):
        bank = MemoryBank([SRAM(GEOMETRY)])
        report = run_baseline_session(
            HuangJoneScheme(bank), FaultInjector(), backend="numpy", bit_accurate=True
        )
        assert report.iterations == 0
        assert report.localized == []


class TestModeAndBackendRouting:
    def test_effective_mode_delegates_identically(self):
        reference_bank, reference_injector = build_sampled_bank(1)
        fast_bank, fast_injector = build_sampled_bank(1)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, include_drf=True
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank), fast_injector, backend="numpy", include_drf=True
        )
        assert fast.iterations == reference.iterations
        assert fast.localized == reference.localized

    def test_reference_backend_delegates(self):
        reference_bank, reference_injector = build_sampled_bank(2)
        fast_bank, fast_injector = build_sampled_bank(2)
        reference = HuangJoneScheme(reference_bank).diagnose(
            reference_injector, bit_accurate=True
        )
        delegated = run_baseline_session(
            HuangJoneScheme(fast_bank),
            fast_injector,
            backend="reference",
            bit_accurate=True,
        )
        assert_baseline_equal(reference, delegated, reference_bank, fast_bank)

    def test_custom_backend_rejected_explicitly(self):
        class Custom(MarchBackend):
            name = "custom"

        bank, injector = build_sampled_bank(3)
        with pytest.raises(ValueError, match="run_baseline_session supports"):
            run_baseline_session(HuangJoneScheme(bank), injector, backend=Custom())

    def test_supports_baseline_capability(self):
        memory = SRAM(GEOMETRY)
        assert ReferenceBackend().supports_baseline(memory)
        assert NumpyBackend().supports_baseline(memory)
        # Early-stop does not disqualify serial replay (unlike march runs).
        assert NumpyBackend(stop_on_first_failure=True).supports_baseline(memory)
        traced = SRAM(GEOMETRY, trace=True)
        assert not NumpyBackend().supports_baseline(traced)
        assert not MarchBackend().supports_baseline(memory)


class TestEarlyAbort:
    @pytest.mark.parametrize("seed", range(3))
    def test_early_abort_preserves_diagnosis(self, seed):
        exact_bank, exact_injector = build_sampled_bank(seed)
        abort_bank, abort_injector = build_sampled_bank(seed)
        exact = run_baseline_session(
            HuangJoneScheme(exact_bank), exact_injector, backend="numpy",
            bit_accurate=True,
        )
        aborted = run_baseline_session(
            HuangJoneScheme(abort_bank), abort_injector, backend="numpy",
            bit_accurate=True, early_abort=True,
        )
        assert aborted.iterations <= exact.iterations
        assert aborted.localized == exact.localized

    def test_early_abort_skips_the_confirming_iteration(self):
        # Once only the (serially invisible) DRF is pending, the exact run
        # burns one more full no-progress iteration; early abort skips it.
        def build():
            memory = SRAM(GEOMETRY)
            injector = FaultInjector()
            injector.inject(
                memory,
                [
                    StuckAtFault(CellRef(4, 2), 1),
                    DataRetentionFault(CellRef(8, 3), fragile_value=1),
                ],
            )
            return MemoryBank([memory]), injector

        exact_bank, exact_injector = build()
        abort_bank, abort_injector = build()
        exact = run_baseline_session(
            HuangJoneScheme(exact_bank), exact_injector, backend="numpy",
            bit_accurate=True,
        )
        aborted = run_baseline_session(
            HuangJoneScheme(abort_bank), abort_injector, backend="numpy",
            bit_accurate=True, early_abort=True,
        )
        assert aborted.iterations == exact.iterations - 1
        assert aborted.localized == exact.localized

    def test_early_abort_matches_reference_backend(self):
        # early_abort is honoured by both backends with identical results.
        reference_bank, reference_injector = build_sampled_bank(4)
        fast_bank, fast_injector = build_sampled_bank(4)
        reference = run_baseline_session(
            HuangJoneScheme(reference_bank), reference_injector,
            backend="reference", bit_accurate=True, early_abort=True,
        )
        fast = run_baseline_session(
            HuangJoneScheme(fast_bank), fast_injector,
            backend="numpy", bit_accurate=True, early_abort=True,
        )
        assert_baseline_equal(reference, fast, reference_bank, fast_bank)

    def test_drf_mode_report_accounting(self):
        def build():
            memory = SRAM(GEOMETRY)
            injector = FaultInjector()
            injector.inject(
                memory,
                [
                    StuckAtFault(CellRef(0, 0), 1),
                    DataRetentionFault(CellRef(3, 3), fragile_value=1),
                ],
            )
            return MemoryBank([memory]), injector

        bank, injector = build()
        report = run_baseline_session(
            HuangJoneScheme(bank), injector, backend="numpy",
            bit_accurate=True, include_drf=True,
        )
        twin_bank, twin_injector = build()
        reference = HuangJoneScheme(twin_bank).diagnose(
            twin_injector, bit_accurate=True, include_drf=True
        )
        assert report.cycles == reference.cycles
        assert report.pause_ns == reference.pause_ns
