"""Tests for the per-cell localization evidence API."""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.faults.transition import TransitionFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


@pytest.fixture
def diagnosed():
    memory = SRAM(MemoryGeometry(16, 4, "rep"))
    injector = FaultInjector()
    injector.inject(
        memory,
        [
            StuckAtFault(CellRef(3, 1), 1),  # fails many reads
            TransitionFault(CellRef(9, 2), rising=True),  # fails fewer
        ],
    )
    return FastDiagnosisScheme(MemoryBank([memory])).diagnose()


class TestLocalizedCells:
    def test_one_entry_per_cell(self, diagnosed):
        cells = diagnosed.localized_cells("rep")
        assert {c.cell for c in cells} == {CellRef(3, 1), CellRef(9, 2)}

    def test_evidence_counts(self, diagnosed):
        by_cell = {c.cell: c for c in diagnosed.localized_cells("rep")}
        assert by_cell[CellRef(3, 1)].failing_reads > \
            by_cell[CellRef(9, 2)].failing_reads

    def test_sorted_by_evidence(self, diagnosed):
        cells = diagnosed.localized_cells("rep")
        counts = [c.failing_reads for c in cells]
        assert counts == sorted(counts, reverse=True)

    def test_first_step_recorded(self, diagnosed):
        for cell in diagnosed.localized_cells("rep"):
            assert cell.first_step.startswith(("M", "B"))

    def test_clean_memory_empty(self):
        memory = SRAM(MemoryGeometry(8, 4, "clean"))
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
        assert report.localized_cells("clean") == []
