"""Tests for the diagnosis scan-out chain and the protocol monitor."""

import pytest

from repro.core.protocol import ProtocolMonitor
from repro.core.scanout import DiagnosisScanChain, OP_FIELD_BITS, STEP_FIELD_BITS
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.march.simulator import FailureRecord
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


def _failure(address=3, expected=0b0000, observed=0b0100, step=1, op=0):
    return FailureRecord(
        memory_name="m",
        step_index=step,
        step_label="M1",
        op_index=op,
        operation="r0",
        address=address,
        background=0b1111,
        expected=expected,
        observed=observed,
    )


class TestScanChain:
    def test_frame_width(self):
        chain = DiagnosisScanChain(MemoryGeometry(512, 100))
        assert chain.frame_bits == 9 + 100 + STEP_FIELD_BITS + OP_FIELD_BITS

    def test_roundtrip_single(self):
        chain = DiagnosisScanChain(MemoryGeometry(16, 4))
        stream = chain.encode([_failure()])
        frames = chain.decode(stream)
        assert len(frames) == 1
        frame = frames[0]
        assert frame.address == 3
        assert frame.syndrome == 0b0100
        assert frame.step_index == 1
        assert frame.op_index == 0
        assert frame.failing_cells() == [CellRef(3, 2)]

    def test_roundtrip_many(self):
        chain = DiagnosisScanChain(MemoryGeometry(16, 4))
        failures = [
            _failure(address=a, observed=0b0001 << (a % 4), expected=0)
            for a in range(10)
        ]
        frames = chain.decode(chain.encode(failures))
        assert [f.address for f in frames] == list(range(10))

    def test_scan_cycles(self):
        chain = DiagnosisScanChain(MemoryGeometry(16, 4))
        assert chain.scan_out_cycles(5) == 5 * chain.frame_bits

    def test_malformed_stream_rejected(self):
        chain = DiagnosisScanChain(MemoryGeometry(16, 4))
        with pytest.raises(ValueError):
            chain.decode([0, 1, 0])

    def test_real_session_roundtrip(self):
        """Scan out an actual diagnosis session and recover the cells."""
        geometry = MemoryGeometry(16, 4, "scan")
        memory = SRAM(geometry)
        injector = FaultInjector()
        injector.inject(memory, StuckAtFault(CellRef(9, 2), 1))
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
        chain = DiagnosisScanChain(geometry)
        frames = chain.decode(chain.encode(report.failures["scan"]))
        cells = {cell for frame in frames for cell in frame.failing_cells()}
        assert cells == {CellRef(9, 2)}


class TestProtocolMonitorUnit:
    def test_clean_sequence(self):
        monitor = ProtocolMonitor()
        monitor.on_write(nwrc=False)
        monitor.on_capture()
        monitor.on_scan_en(True)
        monitor.on_idle_shift()
        monitor.on_scan_en(False)
        monitor.on_session_end()
        assert monitor.clean

    def test_write_during_shift_flagged(self):
        monitor = ProtocolMonitor()
        monitor.on_scan_en(True)
        monitor.on_write(nwrc=False)
        assert not monitor.clean
        assert monitor.violations[0].rule == "hold-during-shift"

    def test_nwrc_without_nwrtm_flagged(self):
        monitor = ProtocolMonitor()
        monitor.on_write(nwrc=True)
        assert any(v.rule == "nwrtm-gating" for v in monitor.violations)

    def test_normal_write_with_nwrtm_flagged(self):
        monitor = ProtocolMonitor()
        monitor.on_nwrtm(True)
        monitor.on_write(nwrc=False)
        assert any(v.rule == "nwrtm-gating" for v in monitor.violations)

    def test_unbalanced_scan_en_flagged(self):
        monitor = ProtocolMonitor()
        monitor.on_scan_en(True)
        monitor.on_scan_en(True)
        assert not monitor.clean

    def test_dangling_scan_en_at_end_flagged(self):
        monitor = ProtocolMonitor()
        monitor.on_scan_en(True)
        monitor.on_session_end()
        assert any(v.rule == "scan-en-balance" for v in monitor.violations)

    def test_shift_without_scan_en_flagged(self):
        monitor = ProtocolMonitor()
        monitor.on_idle_shift()
        assert any(v.rule == "hold-during-shift" for v in monitor.violations)

    def test_report_rendering(self):
        monitor = ProtocolMonitor()
        assert "clean" in monitor.report()
        monitor.on_idle_shift()
        assert "violations" in monitor.report()


class TestSchemeUnderMonitor:
    def test_full_session_is_protocol_clean(self):
        """The paper's hold rules are respected by construction."""
        memory = SRAM(MemoryGeometry(16, 4, "mon"))
        StuckAtFault(CellRef(3, 1), 1).attach(memory)
        monitor = ProtocolMonitor()
        scheme = FastDiagnosisScheme(MemoryBank([memory]), monitor=monitor)
        scheme.diagnose()
        assert monitor.clean, monitor.report()
        assert monitor.events > 0

    def test_heterogeneous_session_clean(self, hetero_bank):
        monitor = ProtocolMonitor()
        FastDiagnosisScheme(hetero_bank, monitor=monitor).diagnose()
        assert monitor.clean, monitor.report()
