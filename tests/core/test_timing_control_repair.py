"""Unit tests for Eqs. (2)-(4), the control generator, NWRTM and repair."""

import pytest

from repro.core.control_gen import ControlGenerator, GlobalWire
from repro.core.nwrtm import NwrtmController
from repro.core.repair import RepairController
from repro.core.scheme import FastDiagnosisScheme
from repro.core.timing import (
    proposed_cycles,
    proposed_diagnosis_time_ns,
    proposed_drf_extra_ns,
    proposed_operation_cycles,
    reduction_factor,
    reduction_factor_with_drf,
)
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.march.library import march_c_minus, march_c_nw
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


class TestEq2:
    def test_case_study_cycles(self):
        assert proposed_operation_cycles(512, 100) == 998_440

    def test_case_study_time(self):
        assert proposed_diagnosis_time_ns(512, 100, 10.0) == 9_984_400.0

    def test_structure(self):
        """Eq. (2) decomposes into March C- + extension terms."""
        n, c = 64, 8
        march_c_part = 5 * n + 5 * c + 5 * n * (c + 1)
        extension = (3 * n + 3 * c + 2 * n * (c + 1)) * 3  # ceil(log2 8) = 3
        assert proposed_operation_cycles(n, c) == march_c_part + extension

    def test_generic_counter_matches_for_march_c(self):
        n, c = 64, 8
        expected = 5 * n + 5 * c + 5 * n * (c + 1)
        assert proposed_cycles(march_c_minus(c), n, c) == expected
        assert proposed_cycles(march_c_nw(c), n, c) == expected

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            proposed_cycles(march_c_minus(4), 16, 8)


class TestEq3Eq4:
    def test_case_study_reduction(self):
        assert reduction_factor(512, 100, 10.0, 96) == pytest.approx(84.15, abs=0.01)

    def test_case_study_reduction_with_drf(self):
        assert reduction_factor_with_drf(512, 100, 10.0, 96) == pytest.approx(
            143.4, abs=0.1
        )

    def test_reduction_exceeds_one_for_any_k(self):
        """The paper: R always exceeds one in practice (k >> 1)."""
        for k in (1, 2, 8, 32, 512):
            assert reduction_factor(512, 100, 10.0, k) > 1.0

    def test_drf_reduction_dominates(self):
        """Including DRFs makes the proposed scheme look even better."""
        assert reduction_factor_with_drf(512, 100, 10.0, 96) > reduction_factor(
            512, 100, 10.0, 96
        )

    def test_proposed_drf_increment(self):
        assert proposed_drf_extra_ns(512, 100, 10.0) == (2 * 512 + 2 * 100) * 10.0


class TestControlGenerator:
    def test_baseline_wire_count(self):
        assert ControlGenerator.baseline_wires().count == 7

    def test_proposed_adds_exactly_scan_en(self):
        control = ControlGenerator(drf_screening=False)
        extra = control.wires().extra_over(ControlGenerator.baseline_wires())
        assert extra == {GlobalWire.SCAN_EN}

    def test_nwrtm_wire_when_screening(self):
        control = ControlGenerator(drf_screening=True)
        extra = control.wires().extra_over(ControlGenerator.baseline_wires())
        assert extra == {GlobalWire.SCAN_EN, GlobalWire.NWRTM}

    def test_nwrtm_drive_requires_routing(self):
        control = ControlGenerator(drf_screening=False)
        with pytest.raises(ValueError):
            control.set_nwrtm(True)


class TestNwrtmController:
    def test_window_asserts_and_counts(self):
        control = ControlGenerator()
        nwrtm = NwrtmController(control)
        with nwrtm.nwrc_window():
            assert control.nwrtm
        assert not control.nwrtm
        assert nwrtm.nwrc_ops == 1

    def test_paper_extra_cycles(self):
        nwrtm = NwrtmController(ControlGenerator())
        assert nwrtm.paper_extra_cycles(512, 100) == 2 * 512 + 2 * 100


class TestRepair:
    def _diagnose(self, bank):
        return FastDiagnosisScheme(bank).diagnose()

    def test_repair_then_verify_clean(self):
        memory = SRAM(MemoryGeometry(16, 4, "m"))
        bank = MemoryBank([memory])
        injector = FaultInjector()
        injector.inject(memory, [StuckAtFault(CellRef(3, 1), 1), StuckAtFault(CellRef(9, 0), 0)])
        report = self._diagnose(bank)
        repair = RepairController(bank, spares_per_memory=4)
        result = repair.apply(report)
        assert result.fully_repaired
        assert result.repaired["m"] == {3, 9}
        assert result.detached_faults == 2
        assert self._diagnose(bank).passed

    def test_out_of_spares(self):
        memory = SRAM(MemoryGeometry(16, 4, "m"))
        bank = MemoryBank([memory])
        injector = FaultInjector()
        injector.inject(
            memory, [StuckAtFault(CellRef(w, 0), 1) for w in range(4)]
        )
        report = self._diagnose(bank)
        repair = RepairController(bank, spares_per_memory=2)
        result = repair.apply(report)
        assert not result.fully_repaired
        assert len(result.out_of_spares["m"]) == 2
        assert not self._diagnose(bank).passed

    def test_spare_usage(self):
        memory = SRAM(MemoryGeometry(16, 4, "m"))
        bank = MemoryBank([memory])
        injector = FaultInjector()
        injector.inject(memory, StuckAtFault(CellRef(1, 1), 1))
        repair = RepairController(bank, spares_per_memory=8)
        repair.apply(self._diagnose(bank))
        assert repair.spare_usage()["m"] == (1, 8)

    def test_repair_clean_report_is_noop(self):
        memory = SRAM(MemoryGeometry(16, 4, "m"))
        bank = MemoryBank([memory])
        repair = RepairController(bank)
        result = repair.apply(self._diagnose(bank))
        assert result.total_repaired_words == 0
