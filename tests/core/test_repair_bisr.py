"""Repair detach semantics, the BISR controller and strategy comparison.

The detach regression needs a fault whose victims span *two* words --
no library fault class has more than one victim cell, so a small custom
:class:`~repro.faults.base.CellFault` subclass provides one.
"""

import pytest

from repro.core.redundancy import (
    RedundancyBudget,
    allocate_redundancy,
    unrepaired_must_repair_rows,
)
from repro.core.repair import BisrController, RepairController
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.base import CellFault, FaultClass
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


class TwinStuckFault(CellFault):
    """One defect forcing *two* victim cells (different words) to 1."""

    def __init__(self, first: CellRef, second: CellRef) -> None:
        self.fault_class = FaultClass.SAF1
        self.victims = (first, second)

    def on_read(self, memory, word, bit, stored_bit):
        """Read back 1 regardless of the stored bit."""
        return 1

    def on_write(self, memory, word, bit, old_bit, new_bit):
        """The cell is stuck: writes cannot clear it."""
        return 1


def diagnose(bank):
    return FastDiagnosisScheme(bank).diagnose()


class TestDetachSemantics:
    def build(self):
        memory = SRAM(MemoryGeometry(16, 4, "m"))
        bank = MemoryBank([memory])
        fault = TwinStuckFault(CellRef(3, 1), CellRef(9, 2))
        FaultInjector().inject(memory, fault)
        return bank, memory, fault

    def test_partial_word_repair_keeps_fault_attached(self):
        """Repairing one of the two victim words must NOT detach the
        fault: the other word still reads corrupted, and detaching would
        silently erase a live defect from the verification re-run."""
        bank, memory, fault = self.build()
        report = diagnose(bank)
        assert {f.address for f in report.failures["m"]} >= {3, 9}
        result = RepairController(bank, spares_per_memory=1).apply(report)
        assert result.repaired["m"] == {3}
        assert result.out_of_spares["m"] == {9}
        assert result.detached_faults == 0
        assert fault in memory.cell_faults
        assert not diagnose(bank).passed

    def test_full_victim_repair_detaches(self):
        bank, memory, fault = self.build()
        report = diagnose(bank)
        result = RepairController(bank, spares_per_memory=4).apply(report)
        assert result.repaired["m"] >= {3, 9}
        assert result.detached_faults == 1
        assert fault not in memory.cell_faults
        assert diagnose(bank).passed

    def test_aggressor_only_repair_keeps_fault_attached(self):
        """A fault whose victim word is unrepaired stays attached even if
        its aggressor word is remapped (conservative: the victim cell is
        still in the array)."""
        from repro.faults.coupling import IdempotentCouplingFault

        memory = SRAM(MemoryGeometry(16, 4, "m"))
        bank = MemoryBank([memory])
        fault = IdempotentCouplingFault(CellRef(2, 0), CellRef(11, 3))
        FaultInjector().inject(memory, fault)
        assert RepairController(bank, 4)._detach_word_faults(memory, {2}) == 0
        assert fault in memory.cell_faults


class TestBisrController:
    def build(self, budget, faults):
        memory = SRAM(MemoryGeometry(16, 6, "m"))
        bank = MemoryBank([memory])
        FaultInjector().inject(memory, faults)
        return bank, memory, BisrController(bank, budget)

    def test_row_repair_detaches_and_verifies_clean(self):
        bank, memory, bisr = self.build(
            RedundancyBudget(2, 1),
            [StuckAtFault(CellRef(4, b), 1) for b in range(4)],
        )
        result = bisr.apply(diagnose(bank))
        assert result.new_rows["m"] == {4}
        assert result.detached_faults == 4
        assert bisr.repair_yield() == 1.0
        assert diagnose(bank).passed

    def test_residual_only_resolved_across_rounds(self):
        """A second pass solves only cells not already covered, and a
        pass with nothing new commits zero spares."""
        bank, memory, bisr = self.build(
            RedundancyBudget(2, 0), [StuckAtFault(CellRef(1, 1), 1)]
        )
        first = bisr.apply(diagnose(bank))
        assert first.total_new_spares == 1
        StuckAtFault(CellRef(7, 2), 0).attach(memory)
        second = bisr.apply(diagnose(bank))
        assert second.new_rows["m"] == {7}
        assert bisr.rows["m"] == {1, 7}
        third = bisr.apply(diagnose(bank))
        assert third.total_new_spares == 0

    def test_budget_exhaustion_marks_infeasible(self):
        bank, memory, bisr = self.build(
            RedundancyBudget(1, 0),
            [StuckAtFault(CellRef(w, 0), 1) for w in (2, 5, 9)],
        )
        bisr.apply(diagnose(bank))
        assert "m" in bisr.infeasible
        assert bisr.repair_yield() == 0.0
        assert not diagnose(bank).passed

    def test_yield_none_on_clean_bank(self):
        memory = SRAM(MemoryGeometry(8, 4, "m"))
        bank = MemoryBank([memory])
        bisr = BisrController(bank, RedundancyBudget(1, 1))
        result = bisr.apply(diagnose(bank))
        assert result.total_new_spares == 0
        assert bisr.repair_yield() is None


#: Pinned dense-defect fixture: two full-row defects (word-line shorts,
#: more failing columns than any column budget -- must-repair rows) plus
#: a bit-line defect failing column 2 across six scattered words.
DENSE_CELLS = frozenset(
    {CellRef(3, b) for b in range(6)}
    | {CellRef(10, b) for b in range(6)}
    | {CellRef(w, 2) for w in (0, 1, 5, 7, 12, 13)}
)
DENSE_BUDGET = RedundancyBudget(spare_rows=2, spare_cols=1)
#: Post-repair evaluation: with every spare spent, any row still failing
#: is an unrepaired must-repair row (``> 0`` failing columns).
EXHAUSTED = RedundancyBudget(spare_rows=0, spare_cols=0)


def greedy_word_remap(cells, spares):
    """The word-spare baseline: remap failing words largest-first until
    the pool runs dry; returns the words it repaired."""
    by_word: dict[int, int] = {}
    for cell in cells:
        by_word[cell.word] = by_word.get(cell.word, 0) + 1
    ranked = sorted(by_word, key=lambda w: (-by_word[w], w))
    return set(ranked[:spares])


class TestMustRepairBeatsGreedyRemap:
    def test_dense_fixture_must_repair_rows(self):
        assert unrepaired_must_repair_rows(DENSE_CELLS, DENSE_BUDGET) == {3, 10}

    def test_solver_covers_where_word_remap_cannot(self):
        """The must-repair solver spends 2 rows + 1 column and covers the
        whole dense pattern; the word-remap baseline given the same
        number of spare elements (3 words) pays for the bit-line defect
        word by word and strands most of it -- strictly more rows left
        needing repair once every spare is spent."""
        plan = allocate_redundancy(DENSE_CELLS, DENSE_BUDGET)
        assert plan.feasible
        assert plan.repair_rows == {3, 10}
        assert plan.repair_cols == {2}
        residue_solver = {c for c in DENSE_CELLS if not plan.covers(c)}
        assert residue_solver == set()

        spares = DENSE_BUDGET.spare_rows + DENSE_BUDGET.spare_cols
        repaired_words = greedy_word_remap(DENSE_CELLS, spares)
        assert repaired_words >= {3, 10}  # heaviest words rank first
        residue_remap = {c for c in DENSE_CELLS if c.word not in repaired_words}
        assert residue_remap  # the baseline strands the bit-line defect

        solver_unrepaired = unrepaired_must_repair_rows(residue_solver, EXHAUSTED)
        remap_unrepaired = unrepaired_must_repair_rows(residue_remap, EXHAUSTED)
        assert solver_unrepaired == set()
        assert len(remap_unrepaired) == 5
        assert len(solver_unrepaired) < len(remap_unrepaired)
