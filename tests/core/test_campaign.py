"""Tests for the campaign orchestration API."""

import pytest

from repro.core.campaign import DiagnosisCampaign
from repro.soc.chip import SoCConfig


@pytest.fixture
def campaign():
    return DiagnosisCampaign(SoCConfig.buffer_cluster(), defect_rate=0.005, seed=9)


class TestFullCampaign:
    def test_run_everything(self, campaign):
        report = campaign.run()
        assert report.injected_faults > 0
        assert report.localization_rate == 1.0
        assert report.baseline is not None
        assert report.reduction_factor > 10
        assert report.repair is not None and report.repair.fully_repaired
        assert report.verification_passed

    def test_summary_lines(self, campaign):
        report = campaign.run()
        text = "\n".join(report.summary_lines())
        assert "reduction" in text and "verify   : PASS" in text

    def test_without_baseline(self, campaign):
        report = campaign.run(include_baseline=False)
        assert report.baseline is None
        assert report.reduction_factor is None

    def test_without_repair(self, campaign):
        report = campaign.run(repair=False)
        assert report.repair is None
        assert report.verification_passed is None


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = DiagnosisCampaign(
            SoCConfig.buffer_cluster(), defect_rate=0.005, seed=4
        ).run(include_baseline=False, repair=False)
        second = DiagnosisCampaign(
            SoCConfig.buffer_cluster(), defect_rate=0.005, seed=4
        ).run(include_baseline=False, repair=False)
        assert first.injected_faults == second.injected_faults
        assert first.proposed.total_failures == second.proposed.total_failures

    def test_spare_exhaustion_reported(self):
        report = DiagnosisCampaign(
            SoCConfig.buffer_cluster(),
            defect_rate=0.02,
            seed=2,
            spares_per_memory=1,
        ).run(include_baseline=False)
        assert not report.repair.fully_repaired
        assert report.verification_passed is False

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            DiagnosisCampaign(SoCConfig.buffer_cluster(), defect_rate=2.0)


class TestCaseStudySoc:
    def test_case_study_soc_campaign(self):
        from repro.soc.case_study import case_study_soc

        soc = case_study_soc(memories=4)
        assert soc.is_heterogeneous()
        report = DiagnosisCampaign(soc, defect_rate=0.001, seed=5).run(
            include_baseline=False, repair=False
        )
        assert report.localization_rate == 1.0

    def test_homogeneous_variant(self):
        from repro.soc.case_study import case_study_soc

        soc = case_study_soc(memories=2, heterogeneous=False)
        assert not soc.is_heterogeneous()
