"""CampaignReport paths: reduction_factor None/value cases, summary_lines."""

from __future__ import annotations

import pytest

from repro.baseline.scheme import BaselineReport
from repro.core.campaign import CampaignReport
from repro.core.report import ProposedReport
from repro.core.repair import RepairResult


def proposed_report(cycles: int = 1000) -> ProposedReport:
    return ProposedReport(
        algorithm_name="March CW-NW",
        controller_words=16,
        controller_bits=8,
        period_ns=10.0,
        cycles=cycles,
        failures={"m0": []},
    )


def baseline_report(iterations: int = 4) -> BaselineReport:
    return BaselineReport(
        iterations=iterations,
        controller_words=16,
        controller_bits=8,
        period_ns=10.0,
    )


class TestReductionFactor:
    def test_none_without_baseline(self):
        report = CampaignReport("soc", 3, proposed=proposed_report())
        assert report.reduction_factor is None

    def test_none_without_proposed(self):
        report = CampaignReport("soc", 3, baseline=baseline_report())
        assert report.reduction_factor is None

    def test_none_with_neither(self):
        assert CampaignReport("soc", 0).reduction_factor is None

    def test_ratio_with_both(self):
        report = CampaignReport(
            "soc", 3, proposed=proposed_report(), baseline=baseline_report()
        )
        expected = report.baseline.time_ns / report.proposed.time_ns
        assert report.reduction_factor == pytest.approx(expected)
        assert report.reduction_factor > 1.0


class TestSummaryLines:
    def test_minimal_report(self):
        lines = CampaignReport("soc", 5).summary_lines()
        assert lines == ["campaign on soc: 5 faults injected"]

    def test_proposed_only(self):
        report = CampaignReport(
            "soc", 2, proposed=proposed_report(), localization_rate=0.75
        )
        text = "\n".join(report.summary_lines())
        assert "proposed" in text
        assert "75.0%" in text
        assert "baseline" not in text
        assert "reduction" not in text

    def test_full_report_renders_every_section(self):
        repair = RepairResult(
            repaired={"m0": {1, 2}}, out_of_spares={"m0": set()}, detached_faults=2
        )
        report = CampaignReport(
            "soc",
            4,
            proposed=proposed_report(),
            baseline=baseline_report(),
            repair=repair,
            verification_passed=True,
            localization_rate=1.0,
        )
        text = "\n".join(report.summary_lines())
        for needle in ("proposed", "baseline", "reduction", "repair", "verify", "PASS"):
            assert needle in text
        assert "2 words" in text

    def test_failed_verification_renders_fail(self):
        report = CampaignReport("soc", 1, verification_passed=False)
        assert any("FAIL" in line for line in report.summary_lines())
