"""Unit tests for local address generators and the comparator array."""

import pytest

from repro.core.address_gen import LocalAddressGenerator
from repro.core.comparator import ComparatorArray
from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import nw1, r0, r1, w0, w1


class TestLocalAddressGenerator:
    def test_no_wrap_for_equal_size(self):
        generator = LocalAddressGenerator(8, 8)
        assert not generator.wraps
        assert generator.local_address(5) == 5
        assert not generator.has_wrapped(7)

    def test_wrap_mapping(self):
        generator = LocalAddressGenerator(4, 8)
        assert generator.wraps
        assert generator.local_address(5) == 1

    def test_has_wrapped_threshold(self):
        generator = LocalAddressGenerator(4, 8)
        assert not generator.has_wrapped(3)
        assert generator.has_wrapped(4)

    def test_sweep_up(self):
        generator = LocalAddressGenerator(2, 4)
        sweep = generator.sweep(AddressOrder.UP)
        assert sweep == [(0, 0, False), (1, 1, False), (2, 0, True), (3, 1, True)]

    def test_sweep_down_first_visits_are_distinct(self):
        generator = LocalAddressGenerator(3, 7)
        sweep = generator.sweep(AddressOrder.DOWN)
        first_three_locals = [local for _, local, _ in sweep[:3]]
        assert len(set(first_three_locals)) == 3
        assert all(not wrapped for _, _, wrapped in sweep[:3])
        assert all(wrapped for _, _, wrapped in sweep[3:])

    def test_smaller_controller_rejected(self):
        with pytest.raises(ValueError):
            LocalAddressGenerator(8, 4)


class TestComparatorExpectations:
    def test_unwrapped_read_expects_op_data(self):
        comparator = ComparatorArray("m", 4)
        element = MarchElement(AddressOrder.UP, (r0(), w1()))
        assert comparator.expected_word(element, 0, 0b1111, wrapped=False) == 0b0000

    def test_wrapped_read_expects_final_write(self):
        """After wrap-around the read-modify-write already ran once."""
        comparator = ComparatorArray("m", 4)
        element = MarchElement(AddressOrder.UP, (r0(), w1()))
        assert comparator.expected_word(element, 0, 0b1111, wrapped=True) == 0b1111

    def test_wrapped_read_after_inner_write(self):
        """A read following a write in the same visit expects that write."""
        comparator = ComparatorArray("m", 4)
        element = MarchElement(AddressOrder.UP, (w0(), r0(), w1()))
        assert comparator.expected_word(element, 1, 0b1111, wrapped=True) == 0b0000

    def test_wrapped_read_only_element_unchanged(self):
        comparator = ComparatorArray("m", 4)
        element = MarchElement(AddressOrder.ANY, (r0(),))
        assert comparator.expected_word(element, 0, 0b1111, wrapped=True) == 0b0000

    def test_nwrc_counts_as_final_write(self):
        comparator = ComparatorArray("m", 4)
        element = MarchElement(AddressOrder.UP, (r0(), nw1()))
        assert comparator.expected_word(element, 0, 0b1111, wrapped=True) == 0b1111

    def test_write_op_returns_none(self):
        comparator = ComparatorArray("m", 4)
        element = MarchElement(AddressOrder.UP, (r0(), w1()))
        assert comparator.expected_word(element, 1, 0b1111, wrapped=False) is None

    def test_stripe_background_expansion(self):
        comparator = ComparatorArray("m", 4)
        element = MarchElement(AddressOrder.UP, (r1(), w0()))
        assert comparator.expected_word(element, 0, 0b1010, wrapped=False) == 0b1010
        assert comparator.expected_word(element, 0, 0b1010, wrapped=True) == 0b0101


class TestComparatorRecording:
    def _compare(self, comparator, observed, expected):
        return comparator.compare(
            observed,
            expected,
            step_index=1,
            step_label="M1",
            op_index=0,
            operation="r0",
            local_address=3,
            background=0b1111,
        )

    def test_match_records_nothing(self):
        comparator = ComparatorArray("m", 4)
        assert not self._compare(comparator, 0b0000, 0b0000)
        assert comparator.failures == []
        assert comparator.comparisons == 1

    def test_mismatch_recorded(self):
        comparator = ComparatorArray("m", 4)
        assert self._compare(comparator, 0b0100, 0b0000)
        failure = comparator.failures[0]
        assert failure.syndrome == 0b0100
        assert failure.address == 3
        assert failure.step_label == "M1"

    def test_reset(self):
        comparator = ComparatorArray("m", 4)
        self._compare(comparator, 1, 0)
        comparator.reset()
        assert comparator.failures == [] and comparator.comparisons == 0
