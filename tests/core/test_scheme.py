"""End-to-end tests of the proposed diagnosis scheme (Fig. 3 / F3)."""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.core.timing import proposed_cycles, proposed_operation_cycles
from repro.faults.address_fault import ColumnBridgeFault
from repro.faults.coupling import StateCouplingFault
from repro.faults.injector import FaultInjector
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.faults.weak_cell import WeakCellDefect
from repro.march.library import march_cw_nw
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


def _bank(*shapes):
    memories = [
        SRAM(MemoryGeometry(words, bits, name)) for name, words, bits in shapes
    ]
    return MemoryBank(memories)


class TestFaultFreeSession:
    def test_homogeneous_bank_passes(self):
        bank = _bank(("a", 16, 4), ("b", 16, 4))
        report = FastDiagnosisScheme(bank).diagnose()
        assert report.passed

    def test_heterogeneous_bank_passes(self):
        """Wrap-around tolerance: smaller memories produce no false fails."""
        bank = _bank(("wide", 16, 8), ("narrow", 8, 5), ("tiny", 5, 3))
        report = FastDiagnosisScheme(bank).diagnose(bit_accurate=True)
        assert report.passed

    def test_cycles_match_eq2_model(self):
        bank = _bank(("a", 16, 8))
        report = FastDiagnosisScheme(bank).diagnose()
        assert report.cycles == proposed_cycles(march_cw_nw(8), 16, 8)

    def test_eq2_closed_form_for_march_cw(self):
        assert proposed_cycles(march_cw_nw(100), 512, 100) == \
            proposed_operation_cycles(512, 100)

    def test_zero_pause_time(self):
        """NWRTM: the whole session runs without a single retention pause."""
        bank = _bank(("a", 16, 8))
        report = FastDiagnosisScheme(bank).diagnose()
        assert report.pause_ns == 0.0

    def test_nwrc_ops_counted(self):
        bank = _bank(("a", 16, 8))
        report = FastDiagnosisScheme(bank).diagnose()
        # March CW-NW has one Nw1 and one Nw0 per address (M1 and M4).
        assert report.nwrc_ops == 2 * 16

    def test_report_time(self):
        bank = _bank(("a", 16, 8))
        scheme = FastDiagnosisScheme(bank, period_ns=5.0)
        report = scheme.diagnose()
        assert report.time_ns == report.cycles * 5.0


class TestSingleFaultDiagnosis:
    def test_saf_localized_exactly(self):
        bank = _bank(("a", 16, 4))
        injector = FaultInjector()
        injector.inject(bank[0], StuckAtFault(CellRef(9, 2), 1))
        report = FastDiagnosisScheme(bank).diagnose()
        assert report.detected_cells("a") == {CellRef(9, 2)}

    def test_drf_localized_without_pauses(self):
        bank = _bank(("a", 16, 4))
        injector = FaultInjector()
        injector.inject(bank[0], DataRetentionFault(CellRef(5, 1), 1))
        report = FastDiagnosisScheme(bank).diagnose()
        assert CellRef(5, 1) in report.detected_cells("a")
        assert report.pause_ns == 0.0

    def test_weak_cell_localized(self):
        bank = _bank(("a", 16, 4))
        injector = FaultInjector()
        injector.inject(bank[0], WeakCellDefect(CellRef(3, 3), 0))
        report = FastDiagnosisScheme(bank).diagnose()
        assert CellRef(3, 3) in report.detected_cells("a")

    def test_intra_word_read_disturb_needs_cw_backgrounds(self):
        bank = _bank(("a", 16, 4))
        injector = FaultInjector()
        injector.inject(
            bank[0],
            StateCouplingFault(
                CellRef(4, 2), CellRef(4, 1), 1, 1, affects_write=False
            ),
        )
        report = FastDiagnosisScheme(bank).diagnose()
        assert CellRef(4, 1) in report.detected_cells("a")

    def test_column_bridge_detected(self):
        bank = _bank(("a", 16, 4))
        injector = FaultInjector()
        injector.inject(bank[0], ColumnBridgeFault(1, 2, 16))
        report = FastDiagnosisScheme(bank).diagnose()
        assert not report.passed


class TestParallelDiagnosis:
    def test_faults_in_all_memories_found_in_one_run(self):
        bank = _bank(("a", 16, 8), ("b", 8, 5), ("c", 5, 3))
        injector = FaultInjector()
        injector.inject(bank[0], StuckAtFault(CellRef(15, 7), 0))
        injector.inject(bank[1], StuckAtFault(CellRef(7, 4), 1))
        injector.inject(bank[2], DataRetentionFault(CellRef(4, 2), 0))
        report = FastDiagnosisScheme(bank).diagnose()
        assert CellRef(15, 7) in report.detected_cells("a")
        assert CellRef(7, 4) in report.detected_cells("b")
        assert CellRef(4, 2) in report.detected_cells("c")
        assert report.failing_memories() == ["a", "b", "c"]

    def test_cycles_independent_of_memory_count(self):
        """Parallel diagnosis: 1 memory or 3 memories, same schedule."""
        one = FastDiagnosisScheme(_bank(("a", 16, 8))).diagnose()
        three = FastDiagnosisScheme(
            _bank(("a", 16, 8), ("b", 8, 5), ("c", 5, 3))
        ).diagnose()
        assert one.cycles == three.cycles

    def test_score_against_population(self):
        from repro.faults.population import sample_population

        geometry = MemoryGeometry(32, 8, "pop")
        memory = SRAM(geometry)
        injector = FaultInjector()
        population = sample_population(geometry, 0.02, rng=13)
        injector.inject(memory, population.faults)
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
        # Every sampled fault class is covered by March CW-NW.
        assert report.localization_rate(injector) == 1.0


class TestFlawedLsbDelivery:
    """F4: LSB-first delivery breaks narrower memories (Sec. 3.2)."""

    def test_false_failures_on_fault_free_narrow_memory(self):
        bank = _bank(("wide", 16, 8), ("narrow", 8, 5))
        scheme = FastDiagnosisScheme(bank, msb_first=False)
        report = scheme.diagnose()
        assert report.failures["narrow"], "expected mis-compares on the narrow memory"

    def test_widest_memory_unaffected(self):
        bank = _bank(("wide", 16, 8), ("narrow", 8, 5))
        scheme = FastDiagnosisScheme(bank, msb_first=False)
        report = scheme.diagnose()
        assert not report.failures["wide"]

    def test_msb_first_fixes_it(self):
        bank = _bank(("wide", 16, 8), ("narrow", 8, 5))
        report = FastDiagnosisScheme(bank, msb_first=True).diagnose()
        assert report.passed


class TestSummaryOutput:
    def test_summary_lines_render(self):
        bank = _bank(("a", 16, 4))
        injector = FaultInjector()
        injector.inject(bank[0], StuckAtFault(CellRef(1, 1), 1))
        report = FastDiagnosisScheme(bank).diagnose()
        text = "\n".join(report.summary_lines())
        assert "March CW-NW" in text
        assert "a: " in text
