"""Tests for the go/no-go early-abort mode (test vs diagnosis)."""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


def _bank_with_fault():
    memory = SRAM(MemoryGeometry(16, 4, "go"))
    injector = FaultInjector()
    injector.inject(memory, StuckAtFault(CellRef(2, 1), 1))
    return MemoryBank([memory])


class TestEarlyAbort:
    def test_faulty_bank_aborts_early(self):
        bank = _bank_with_fault()
        report = FastDiagnosisScheme(bank).diagnose(early_abort=True)
        assert report.aborted_early
        assert not report.passed

    def test_aborted_session_is_shorter(self):
        full = FastDiagnosisScheme(_bank_with_fault()).diagnose()
        quick = FastDiagnosisScheme(_bank_with_fault()).diagnose(early_abort=True)
        assert quick.cycles < full.cycles
        assert not full.aborted_early

    def test_fault_free_bank_runs_to_completion(self):
        memory = SRAM(MemoryGeometry(16, 4, "clean"))
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose(
            early_abort=True
        )
        assert not report.aborted_early
        assert report.passed

    def test_abort_waits_for_every_memory(self):
        """Go/no-go over a bank only aborts once each memory has failed."""
        faulty = SRAM(MemoryGeometry(16, 4, "bad"))
        clean = SRAM(MemoryGeometry(16, 4, "good"))
        injector = FaultInjector()
        injector.inject(faulty, StuckAtFault(CellRef(2, 1), 1))
        bank = MemoryBank([faulty, clean])
        report = FastDiagnosisScheme(bank).diagnose(early_abort=True)
        # The clean memory never fails, so the session must not abort.
        assert not report.aborted_early
        assert report.failures["bad"] and not report.failures["good"]

    def test_partial_localization_still_correct(self):
        bank = _bank_with_fault()
        report = FastDiagnosisScheme(bank).diagnose(early_abort=True)
        assert report.detected_cells("go") == {CellRef(2, 1)}
