"""Tests for the 2-D redundancy allocator."""

import pytest

from repro.core.redundancy import (
    RedundancyBudget,
    RedundancyPlan,
    allocate_redundancy,
)
from repro.memory.geometry import CellRef


def cells(*pairs):
    return {CellRef(w, b) for w, b in pairs}


class TestTrivialCases:
    def test_no_failures(self):
        plan = allocate_redundancy(set(), RedundancyBudget(1, 1))
        assert plan.feasible
        assert plan.spares_used == (0, 0)

    def test_single_cell_uses_one_spare(self):
        plan = allocate_redundancy(cells((3, 2)), RedundancyBudget(1, 1))
        assert plan.feasible
        assert plan.covers(CellRef(3, 2))
        assert sum(plan.spares_used) == 1

    def test_single_cell_no_budget_infeasible(self):
        plan = allocate_redundancy(cells((3, 2)), RedundancyBudget(0, 0))
        assert not plan.feasible
        assert CellRef(3, 2) in plan.uncovered


class TestMustRepair:
    def test_heavy_row_forces_row_spare(self):
        """A row with more failing columns than column spares must take a row."""
        failing = cells((5, 0), (5, 1), (5, 2), (0, 7))
        plan = allocate_redundancy(failing, RedundancyBudget(1, 1))
        assert plan.feasible
        assert 5 in plan.repair_rows
        assert plan.covers(CellRef(0, 7))

    def test_heavy_column_forces_column_spare(self):
        failing = cells((0, 4), (1, 4), (2, 4), (9, 0))
        plan = allocate_redundancy(failing, RedundancyBudget(1, 1))
        assert plan.feasible
        assert 4 in plan.repair_cols

    def test_cascading_must_repair(self):
        """Allocating one forced row reduces the column budget analysis."""
        failing = cells((1, 0), (1, 1), (1, 2), (2, 5), (3, 5), (4, 5))
        plan = allocate_redundancy(failing, RedundancyBudget(1, 1))
        assert plan.feasible
        assert 1 in plan.repair_rows and 5 in plan.repair_cols


class TestBranchAndBound:
    def test_diagonal_needs_one_spare_each(self):
        failing = cells((0, 0), (1, 1))
        plan = allocate_redundancy(failing, RedundancyBudget(1, 1))
        assert plan.feasible
        assert all(plan.covers(c) for c in failing)

    def test_diagonal_of_three_with_two_spares_infeasible(self):
        failing = cells((0, 0), (1, 1), (2, 2))
        plan = allocate_redundancy(failing, RedundancyBudget(1, 1))
        assert not plan.feasible

    def test_cross_pattern_solved_optimally(self):
        """A full row + full column intersecting: 1 row + 1 col suffice."""
        failing = cells(*[(4, b) for b in range(6)], *[(w, 2) for w in range(6)])
        plan = allocate_redundancy(failing, RedundancyBudget(1, 1))
        assert plan.feasible
        assert plan.repair_rows == {4} and plan.repair_cols == {2}

    def test_choice_requires_backtracking(self):
        """Greedy row-first fails here; the exact search must backtrack."""
        failing = cells((0, 0), (0, 1), (1, 0), (2, 5))
        plan = allocate_redundancy(failing, RedundancyBudget(2, 1))
        assert plan.feasible
        assert all(plan.covers(c) for c in failing)

    def test_budget_exhaustion_reports_uncovered(self):
        failing = cells((0, 0), (1, 1), (2, 2), (3, 3))
        plan = allocate_redundancy(failing, RedundancyBudget(1, 1))
        assert not plan.feasible
        assert plan.uncovered


class TestPlanApi:
    def test_covers(self):
        plan = RedundancyPlan(repair_rows={1}, repair_cols={2})
        assert plan.covers(CellRef(1, 9))
        assert plan.covers(CellRef(7, 2))
        assert not plan.covers(CellRef(0, 0))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RedundancyBudget(-1, 0)


class TestDiagnosisIntegration:
    def test_end_to_end_with_proposed_scheme(self):
        """Diagnose, then allocate row/column spares for what was found."""
        from repro.core.scheme import FastDiagnosisScheme
        from repro.faults.stuck_at import StuckAtFault
        from repro.memory.bank import MemoryBank
        from repro.memory.geometry import MemoryGeometry
        from repro.memory.sram import SRAM

        memory = SRAM(MemoryGeometry(16, 8, "red"))
        for bit in range(5):
            StuckAtFault(CellRef(6, bit), 1).attach(memory)  # a bad row
        StuckAtFault(CellRef(11, 3), 0).attach(memory)
        report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
        plan = allocate_redundancy(
            report.detected_cells("red"), RedundancyBudget(1, 1)
        )
        assert plan.feasible
        assert 6 in plan.repair_rows
