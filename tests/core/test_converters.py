"""Unit tests for the SPC, PSC and data background generator (Figs. 4/5)."""

import pytest

from repro.core.background_gen import DataBackgroundGenerator
from repro.core.psc import ParallelToSerialConverter
from repro.core.spc import SerialToParallelConverter
from repro.util.bitops import bits_to_int


class TestSpcMsbFirst:
    """The paper's design: MSB-first delivery adapts to any width."""

    def test_equal_width_identity(self):
        generator = DataBackgroundGenerator(8)
        spc = SerialToParallelConverter(8)
        spc.load_stream(generator.stream(0b1011_0010))
        assert spc.parallel_out == 0b1011_0010

    def test_narrow_spc_keeps_low_bits(self):
        """Fig. 4: c = 4 delivery into a c' = 3 SPC keeps DP[2:0]."""
        generator = DataBackgroundGenerator(4)
        spc = SerialToParallelConverter(3)
        spc.load_stream(generator.stream(0b1010))
        assert spc.parallel_out == 0b010

    def test_closed_form_matches_shifting(self):
        generator = DataBackgroundGenerator(8)
        for width in (1, 3, 5, 8):
            for word in (0x00, 0xFF, 0xA7, 0x38):
                spc = SerialToParallelConverter(width)
                spc.load_stream(generator.stream(word))
                assert spc.parallel_out == spc.expected_pattern(word, 8)

    def test_cycle_count(self):
        generator = DataBackgroundGenerator(8)
        spc = SerialToParallelConverter(3)
        generator.deliver(0xFF, [spc])
        assert spc.cycles == 8
        assert generator.cycles == 8
        assert generator.deliveries == 1


class TestSpcLsbFirstFlaw:
    """Sec. 3.2's flawed alternative: narrower memories get the TOP bits."""

    def test_narrow_spc_gets_top_bits(self):
        generator = DataBackgroundGenerator(4, msb_first=False)
        spc = SerialToParallelConverter(3, msb_first=False)
        spc.load_stream(generator.stream(0b1010))
        assert spc.parallel_out == 0b101  # DP[3:1], not DP[2:0]

    def test_equal_width_still_works(self):
        generator = DataBackgroundGenerator(8, msb_first=False)
        spc = SerialToParallelConverter(8, msb_first=False)
        spc.load_stream(generator.stream(0xB2))
        assert spc.parallel_out == 0xB2

    def test_closed_form_matches_shifting(self):
        generator = DataBackgroundGenerator(8, msb_first=False)
        for width in (2, 5, 8):
            for word in (0xF0, 0x0F, 0x5C):
                spc = SerialToParallelConverter(width, msb_first=False)
                spc.load_stream(generator.stream(word))
                assert spc.parallel_out == spc.expected_pattern(word, 8)

    def test_patterns_differ_from_correct_delivery(self):
        """The mismatch the paper warns about, demonstrated."""
        word = 0b1100_0011
        msb = SerialToParallelConverter(4, msb_first=True)
        lsb = SerialToParallelConverter(4, msb_first=False)
        assert msb.expected_pattern(word, 8) != lsb.expected_pattern(word, 8)


class TestBackgroundGenerator:
    def test_stream_order_msb_first(self):
        generator = DataBackgroundGenerator(4)
        assert generator.stream(0b1010) == [1, 0, 1, 0]

    def test_stream_order_lsb_first(self):
        generator = DataBackgroundGenerator(4, msb_first=False)
        assert generator.stream(0b1010) == [0, 1, 0, 1]

    def test_broadcast_to_multiple_spcs(self):
        generator = DataBackgroundGenerator(6)
        spcs = [SerialToParallelConverter(w) for w in (6, 4, 2)]
        generator.deliver(0b110101, spcs)
        assert [s.parallel_out for s in spcs] == [0b110101, 0b0101, 0b01]
        assert generator.cycles == 6  # one shared wire, one delivery

    def test_too_wide_pattern_rejected(self):
        with pytest.raises(ValueError):
            DataBackgroundGenerator(4).stream(0b10000)


class TestPsc:
    def test_capture_then_shift_lsb_first(self):
        psc = ParallelToSerialConverter(4)
        bits = psc.serialize(0b1010)
        assert bits == [0, 1, 0, 1]
        assert bits_to_int(bits) == 0b1010

    def test_roundtrip_many_values(self):
        psc = ParallelToSerialConverter(8)
        for value in (0x00, 0xFF, 0x5A, 0xC3):
            assert bits_to_int(psc.serialize(value)) == value

    def test_scan_en_protocol(self):
        psc = ParallelToSerialConverter(4)
        psc.capture(0b0011)
        with pytest.raises(ValueError):
            psc.shift_out()  # scan_en not asserted
        psc.begin_shift()
        psc.shift_out()
        psc.end_shift()

    def test_capture_during_shift_rejected(self):
        psc = ParallelToSerialConverter(4)
        psc.capture(0b0011)
        psc.begin_shift()
        with pytest.raises(ValueError):
            psc.capture(0b1100)

    def test_counters(self):
        psc = ParallelToSerialConverter(4)
        psc.serialize(0b1111)
        assert psc.captures == 1
        assert psc.cycles == 4

    def test_too_wide_capture_rejected(self):
        with pytest.raises(ValueError):
            ParallelToSerialConverter(4).capture(0b10000)
