"""Closed-form masking analysis vs the bit-accurate interfaces."""

import pytest

from repro.faults.stuck_at import StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.serial.bidirectional import BidirectionalSerialInterface
from repro.serial.masking import (
    clean_write_cells_bidirectional,
    clean_write_cells_unidirectional,
    first_mismatch_bit,
    localizable_bit_unidirectional,
    localizable_bits_bidirectional,
)
from repro.serial.shift_register import ShiftDirection
from repro.serial.unidirectional import UnidirectionalSerialInterface


class TestClosedForms:
    def test_no_faults_all_clean(self):
        assert clean_write_cells_unidirectional([], 8) == set(range(8))
        assert clean_write_cells_bidirectional([], 8) == set(range(8))

    def test_unidirectional_clean_below_lowest(self):
        assert clean_write_cells_unidirectional([3, 6], 8) == {0, 1, 2}

    def test_bidirectional_adds_above_highest(self):
        assert clean_write_cells_bidirectional([3, 6], 8) == {0, 1, 2, 7}

    def test_between_faults_unreachable(self):
        clean = clean_write_cells_bidirectional([2, 5], 8)
        assert 3 not in clean and 4 not in clean

    def test_localizable_unidirectional_is_highest(self):
        assert localizable_bit_unidirectional([3, 6], 8) == 6
        assert localizable_bit_unidirectional([], 8) is None

    def test_localizable_bidirectional_extremes(self):
        assert localizable_bits_bidirectional([3, 6], 8) == {3, 6}
        assert localizable_bits_bidirectional([4], 8) == {4}

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            localizable_bits_bidirectional([9], 8)


class TestFirstMismatchMapping:
    def test_right_direction(self):
        observed = [1, 1, 0, 1]
        expected = [1, 1, 1, 1]
        assert first_mismatch_bit(observed, expected, ShiftDirection.RIGHT, 4) == 1

    def test_left_direction(self):
        observed = [1, 0, 1, 1]
        expected = [1, 1, 1, 1]
        assert first_mismatch_bit(observed, expected, ShiftDirection.LEFT, 4) == 1

    def test_no_mismatch(self):
        assert first_mismatch_bit([1, 1], [1, 1], ShiftDirection.RIGHT, 2) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            first_mismatch_bit([1], [1, 0], ShiftDirection.RIGHT, 2)


class TestCrossValidation:
    """The closed forms must agree with bit-accurate shifting."""

    @pytest.mark.parametrize("faulty_bits", [[2], [5], [1, 6], [0, 3, 7]])
    def test_unidirectional_clean_cells_match_simulation(self, faulty_bits):
        geometry = MemoryGeometry(1, 8, "x")
        memory = SRAM(geometry)
        for bit in faulty_bits:
            StuckAtFault(CellRef(0, bit), 0).attach(memory)
        interface = UnidirectionalSerialInterface(memory)
        interface.fill_word(0, 0xFF)
        word = memory.read(0)
        received_ones = {i for i in range(8) if (word >> i) & 1}
        predicted = clean_write_cells_unidirectional(faulty_bits, 8)
        assert received_ones == predicted

    @pytest.mark.parametrize("faulty_bits", [[2], [1, 6], [3, 4]])
    def test_bidirectional_localization_matches_simulation(self, faulty_bits):
        geometry = MemoryGeometry(1, 8, "x")
        predicted = localizable_bits_bidirectional(faulty_bits, 8)
        found = set()
        for read_dir, write_dir in (
            (ShiftDirection.RIGHT, ShiftDirection.LEFT),
            (ShiftDirection.LEFT, ShiftDirection.RIGHT),
        ):
            memory = SRAM(geometry)
            for bit in faulty_bits:
                StuckAtFault(CellRef(0, bit), 0).attach(memory)
            good = SRAM(MemoryGeometry(1, 8, "good"))
            iface = BidirectionalSerialInterface(memory)
            giface = BidirectionalSerialInterface(good)
            iface.fill_all(0xFF, write_dir)
            giface.fill_all(0xFF, write_dir)
            observed = iface.read_sweep(0x00, read_dir)[0]
            expected = giface.read_sweep(0x00, read_dir)[0]
            bit = first_mismatch_bit(observed, expected, read_dir, 8)
            if bit is not None:
                found.add(bit)
        assert found == predicted
