"""Unit tests for the shift-register primitive."""

import pytest

from repro.serial.shift_register import ShiftDirection, ShiftRegister


class TestBasicShifts:
    def test_right_shift_moves_up(self):
        register = ShiftRegister(4, initial=0b0001)
        out = register.shift(0, ShiftDirection.RIGHT)
        assert out == 0
        assert register.value == 0b0010

    def test_right_shift_emits_msb(self):
        register = ShiftRegister(4, initial=0b1000)
        assert register.shift(0, ShiftDirection.RIGHT) == 1

    def test_left_shift_moves_down(self):
        register = ShiftRegister(4, initial=0b1000)
        register.shift(0, ShiftDirection.LEFT)
        assert register.value == 0b0100

    def test_left_shift_emits_lsb(self):
        register = ShiftRegister(4, initial=0b0001)
        assert register.shift(0, ShiftDirection.LEFT) == 1

    def test_serial_in_enters_correct_end(self):
        register = ShiftRegister(4)
        register.shift(1, ShiftDirection.RIGHT)
        assert register.value == 0b0001
        register2 = ShiftRegister(4)
        register2.shift(1, ShiftDirection.LEFT)
        assert register2.value == 0b1000


class TestWordIO:
    def test_msb_first_right_shift_lands_identity(self):
        """The SPC delivery convention: word bit i ends at stage i."""
        register = ShiftRegister(8)
        register.shift_word_in(0b1011_0010, ShiftDirection.RIGHT, msb_first=True)
        assert register.value == 0b1011_0010

    def test_lsb_first_right_shift_reverses(self):
        register = ShiftRegister(4)
        register.shift_word_in(0b0001, ShiftDirection.RIGHT, msb_first=False)
        assert register.value == 0b1000

    def test_shift_word_out_right_emits_msb_first(self):
        register = ShiftRegister(4, initial=0b1010)
        assert register.shift_word_out(ShiftDirection.RIGHT) == [1, 0, 1, 0]

    def test_shift_word_out_left_emits_lsb_first(self):
        register = ShiftRegister(4, initial=0b1010)
        assert register.shift_word_out(ShiftDirection.LEFT) == [0, 1, 0, 1]

    def test_load_parallel(self):
        register = ShiftRegister(4)
        register.load(0b0110)
        assert register.value == 0b0110


class TestValidation:
    def test_bad_serial_in(self):
        with pytest.raises(ValueError):
            ShiftRegister(4).shift(2)

    def test_too_wide_load(self):
        with pytest.raises(ValueError):
            ShiftRegister(4).load(0b10000)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ShiftRegister(0)
