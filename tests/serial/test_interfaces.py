"""Bit-accurate serial-interface tests: fills, masking, localization."""

import pytest

from repro.faults.stuck_at import StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.serial.bidirectional import BidirectionalSerialInterface
from repro.serial.shift_register import ShiftDirection
from repro.serial.unidirectional import UnidirectionalSerialInterface


@pytest.fixture
def geometry():
    return MemoryGeometry(4, 8, "serial")


class TestUnidirectionalFill:
    def test_fill_word_lands_pattern(self, geometry):
        memory = SRAM(geometry)
        interface = UnidirectionalSerialInterface(memory)
        interface.fill_word(0, 0b1011_0001)
        assert memory.read(0) == 0b1011_0001

    def test_fill_all(self, geometry):
        memory = SRAM(geometry)
        interface = UnidirectionalSerialInterface(memory)
        interface.fill_all(0xA5)
        assert all(memory.read(a) == 0xA5 for a in range(4))

    def test_cycle_cost_is_nc(self, geometry):
        memory = SRAM(geometry)
        interface = UnidirectionalSerialInterface(memory)
        interface.fill_all(0xFF)
        assert interface.cycles == 4 * 8

    def test_outputs_are_previous_contents(self, geometry):
        memory = SRAM(geometry)
        interface = UnidirectionalSerialInterface(memory)
        interface.fill_word(0, 0xFF)
        outputs = interface.fill_word(0, 0x00)
        assert outputs == [1] * 8  # old all-ones emerge MSB-first


class TestUnidirectionalMasking:
    def test_stuck_cell_blocks_downstream_data(self, geometry):
        """Cells above a SAF0 never receive ones: the write-path masking."""
        memory = SRAM(geometry)
        StuckAtFault(CellRef(0, 3), 0).attach(memory)
        interface = UnidirectionalSerialInterface(memory)
        interface.fill_word(0, 0xFF)
        word = memory.read(0)
        assert word & 0b0000_0111 == 0b0000_0111  # below the fault: clean
        assert word & 0b1111_1000 == 0  # at and above: starved of ones


class TestBidirectionalFill:
    def test_right_fill(self, geometry):
        memory = SRAM(geometry)
        interface = BidirectionalSerialInterface(memory)
        interface.fill_word(1, 0x5A, ShiftDirection.RIGHT)
        assert memory.read(1) == 0x5A

    def test_left_fill(self, geometry):
        memory = SRAM(geometry)
        interface = BidirectionalSerialInterface(memory)
        interface.fill_word(1, 0x5A, ShiftDirection.LEFT)
        assert memory.read(1) == 0x5A

    def test_left_fill_reaches_cells_above_fault(self, geometry):
        """The bidirectional fix: ones arrive from the other side."""
        memory = SRAM(geometry)
        StuckAtFault(CellRef(0, 3), 0).attach(memory)
        interface = BidirectionalSerialInterface(memory)
        interface.fill_word(0, 0xFF, ShiftDirection.LEFT)
        word = memory.read(0)
        assert word & 0b1111_0000 == 0b1111_0000  # above the fault: clean

    def test_cycles_counted(self, geometry):
        memory = SRAM(geometry)
        interface = BidirectionalSerialInterface(memory)
        interface.fill_all(0xFF, ShiftDirection.LEFT)
        assert interface.cycles == 4 * 8

    def test_read_sweep_returns_streams(self, geometry):
        memory = SRAM(geometry)
        interface = BidirectionalSerialInterface(memory)
        interface.fill_all(0xFF)
        streams = interface.read_sweep(0x00)
        assert set(streams) == {0, 1, 2, 3}
        assert all(len(s) == 8 for s in streams.values())


class TestDescendingOrder:
    def test_fill_all_descending(self, geometry):
        memory = SRAM(geometry)
        interface = BidirectionalSerialInterface(memory)
        interface.fill_all(0x33, ascending=False)
        assert all(memory.read(a) == 0x33 for a in range(4))
