"""Tests for SoC configs, floorplans, routing and the case study."""

import pytest

from repro.analysis.sweeps import sweep_defect_rate, sweep_geometry, sweep_iterations
from repro.soc.case_study import (
    CASE_STUDY_FAULTS,
    CASE_STUDY_ITERATIONS,
    case_study_bank,
    case_study_geometry,
    case_study_population,
    check_paper_arithmetic,
)
from repro.soc.chip import SoCConfig
from repro.soc.floorplan import Floorplan
from repro.soc.routing import compare_routing, proposed_extra_area_summary


class TestSoCConfig:
    def test_buffer_cluster(self):
        soc = SoCConfig.buffer_cluster()
        assert soc.memory_count == 3
        assert soc.is_heterogeneous()

    def test_build_bank_fresh_instances(self):
        soc = SoCConfig.buffer_cluster()
        bank_a = soc.build_bank()
        bank_b = soc.build_bank()
        bank_a[0].write(0, 1)
        assert bank_b[0].read(0) == 0

    def test_total_cells(self):
        soc = SoCConfig.buffer_cluster()
        assert soc.total_cells == 256 * 32 + 128 * 18 + 64 * 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SoCConfig("empty", [])


class TestFloorplan:
    def test_deterministic_with_seed(self):
        soc = SoCConfig.buffer_cluster()
        a = Floorplan(soc, rng=5)
        b = Floorplan(soc, rng=5)
        assert [p.x for p in a.placements] == [p.x for p in b.placements]

    def test_distances_positive(self):
        floorplan = Floorplan(SoCConfig.buffer_cluster(), rng=0)
        for geometry in floorplan.soc.geometries:
            assert floorplan.distance_to_controller(geometry.name) >= 0

    def test_chain_no_longer_than_star(self):
        floorplan = Floorplan(SoCConfig.buffer_cluster(), rng=0)
        assert floorplan.daisy_chain_length() <= floorplan.total_star_length() * 2

    def test_unknown_memory_rejected(self):
        floorplan = Floorplan(SoCConfig.buffer_cluster(), rng=0)
        with pytest.raises(KeyError):
            floorplan.distance_to_controller("ghost")


class TestRouting:
    def test_parallel_buses_cost_most_wire(self):
        floorplan = Floorplan(SoCConfig.buffer_cluster(), rng=1)
        estimates = {e.architecture: e for e in compare_routing(floorplan)}
        serial = estimates["shared serial [7,8]"]
        parallel = estimates["shared parallel buses"]
        assert parallel.global_wire_length > serial.global_wire_length

    def test_per_memory_bist_replicates_controllers(self):
        floorplan = Floorplan(SoCConfig.buffer_cluster(), rng=1)
        estimates = {e.architecture: e for e in compare_routing(floorplan)}
        assert estimates["per-memory BIST [5,6]"].replicated_controller_transistors > 0

    def test_proposed_close_to_baseline(self):
        """The proposed scheme's wire cost is within a whisker of [7,8]."""
        floorplan = Floorplan(SoCConfig.buffer_cluster(), rng=1)
        estimates = {e.architecture: e for e in compare_routing(floorplan)}
        baseline = estimates["shared serial [7,8]"]
        proposed = estimates["shared serial (proposed)"]
        assert proposed.wires_per_memory == baseline.wires_per_memory + 2

    def test_area_summary_mentions_three_cells(self):
        assert "3.0" in proposed_extra_area_summary()


class TestCaseStudy:
    def test_geometry(self):
        geometry = case_study_geometry()
        assert geometry.words == 512 and geometry.bits == 100

    def test_paper_arithmetic(self):
        arithmetic = check_paper_arithmetic()
        assert arithmetic["cells"] == 51_200
        assert arithmetic["faults"] == CASE_STUDY_FAULTS == 256
        assert arithmetic["iterations"] == CASE_STUDY_ITERATIONS == 96

    def test_population_statistics(self):
        population = case_study_population(rng=4)
        assert population.size == 256
        assert 0.6 < population.m1_localizable / population.size < 0.9

    def test_bank_shape(self):
        bank = case_study_bank(memories=2)
        assert len(bank) == 2
        assert bank.max_bits == 100


class TestSweeps:
    def test_defect_rate_rows(self):
        rows = sweep_defect_rate([0.001, 0.01])
        assert len(rows) == 2
        assert rows[0]["k"] < rows[1]["k"]

    def test_reduction_grows_with_defect_rate(self):
        rows = sweep_defect_rate([0.001, 0.01, 0.05])
        reductions = [float(r["R"]) for r in rows]
        assert reductions == sorted(reductions)

    def test_geometry_sweep(self):
        rows = sweep_geometry([(128, 16), (512, 100)])
        assert len(rows) == 2

    def test_iteration_sweep(self):
        rows = sweep_iterations([1, 96])
        assert float(rows[1]["R"]) > float(rows[0]["R"])
