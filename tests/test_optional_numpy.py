"""numpy is the [fast] extra: the package must import and run without it.

Simulated by installing an import blocker in a subprocess (numpy stays
installed in the test environment itself).
"""

from __future__ import annotations

import subprocess
import sys

BLOCKED_PRELUDE = """
import sys

class _BlockNumpy:
    def find_module(self, name, path=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for this test")

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for this test")

sys.meta_path.insert(0, _BlockNumpy())
"""


def run_without_numpy(body: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", BLOCKED_PRELUDE + body],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_import_repro_without_numpy():
    result = run_without_numpy(
        "import repro\n"
        "import repro.engine\n"
        "print(repro.__version__)\n"
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_reference_diagnosis_runs_without_numpy():
    result = run_without_numpy(
        "from repro import FastDiagnosisScheme, MemoryBank, MemoryGeometry, SRAM\n"
        "from repro.faults.stuck_at import StuckAtFault\n"
        "from repro.memory.geometry import CellRef\n"
        "memory = SRAM(MemoryGeometry(16, 4, 'm0'))\n"
        "StuckAtFault(CellRef(3, 1), value=1).attach(memory)\n"
        "report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()\n"
        "assert not report.passed\n"
        "print(report.total_failures)\n"
    )
    assert result.returncode == 0, result.stderr
    assert int(result.stdout.strip()) > 0


def test_auto_backend_degrades_to_reference_without_numpy():
    result = run_without_numpy(
        "from repro.engine import get_backend, available_backends\n"
        "backend = get_backend('auto')\n"
        "print(type(backend).__name__)\n"
        "print(available_backends()['numpy'])\n"
    )
    assert result.returncode == 0, result.stderr
    name, numpy_available = result.stdout.split()
    assert name == "ReferenceBackend"
    assert numpy_available == "False"


def test_explicit_numpy_backend_raises_without_numpy():
    # Only "auto" may degrade silently; an explicit request must fail loudly.
    result = run_without_numpy(
        "from repro.engine import get_backend\n"
        "try:\n"
        "    get_backend('numpy')\n"
        "except RuntimeError as error:\n"
        "    print('[fast]' in str(error))\n"
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "True"


def test_sampling_raises_helpful_error_without_numpy():
    result = run_without_numpy(
        "from repro.util.rng import make_rng\n"
        "try:\n"
        "    make_rng(0)\n"
        "except RuntimeError as error:\n"
        "    print('fast extra' in str(error) or '[fast]' in str(error))\n"
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "True"
