"""Metamorphic diagnosis invariants of the scenario engine.

Three transformations that must be behavioural no-ops:

* **memory relabeling** -- permuting the order of the SoC's memory list
  (placements and fault streams are keyed by *name*, the controller by
  the bank's extrema, so nothing observable may move);
* **fault-injection order** -- permuting the order faults are attached
  to a memory (faults target distinct victims; hook dispatch must not
  depend on attach order);
* **floorplan symmetry** -- reflecting or translating cluster centers
  *and* placements together preserves every center-to-memory distance,
  hence every assigned rate, hence the whole flow outcome.

Each invariant is checked on the localized-fault sets and the measured
reduction factor R, per the scenario acceptance contract.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.campaign import DiagnosisCampaign
from repro.scenarios import ClusterField, ScenarioSpec, run_scenario_campaign
from repro.scenarios.cluster import assign_rates
from repro.scenarios.flow import clustered_sampler
from repro.soc.floorplan import Floorplan, Placement

BASE_SHAPES = ((12, 6, "alpha"), (16, 8, "beta"), (9, 5, "gamma"))

SPEC = ScenarioSpec(
    shapes=BASE_SHAPES,
    campaigns=1,
    master_seed=23,
    base_defect_rate=0.015,
    cluster_count=2,
    cluster_radius=28.0,
    cluster_peak_rate=0.06,
    intermittent_rate=0.01,
    upset_probability=0.5,
    spares_per_memory=16,
    backend="auto",
)


def localized_sets(report) -> dict[str, frozenset]:
    """Per-memory localized (detected) cell sets of the whole flow."""
    proposed = report.proposed
    return {
        name: frozenset(proposed.detected_cells(name))
        for name in proposed.failures
    }


def baseline_localized(report) -> frozenset:
    """Order-free view of the baseline's localization outcome."""
    if report.baseline is None:
        return frozenset()
    return frozenset(
        (f.memory_name, f.cell, f.fault_class) for f in report.baseline.localized
    )


def flow_fingerprint(report) -> dict:
    """Everything the metamorphic relations require to be invariant."""
    return {
        "localized": localized_sets(report),
        "baseline_localized": baseline_localized(report),
        "reduction_factor": report.reduction_factor,
        "injected": report.injected_faults,
        "escaped": report.escaped_faults,
        "retest_rounds": report.retest_rounds,
        "retest_converged": report.retest_converged,
        "intermittent": (
            report.intermittent_faults,
            report.intermittent_detected,
        ),
        "assigned_rates": report.assigned_rates,
    }


PERMUTATIONS = [(1, 0, 2), (2, 1, 0), (1, 2, 0)]


class TestMemoryRelabeling:
    @pytest.mark.parametrize("order", PERMUTATIONS)
    def test_permuting_memory_order_is_a_no_op(self, order):
        baseline_run = run_scenario_campaign(SPEC, 0)
        permuted_spec = dataclasses.replace(
            SPEC, shapes=tuple(BASE_SHAPES[i] for i in order)
        )
        permuted_run = run_scenario_campaign(permuted_spec, 0)
        assert flow_fingerprint(permuted_run) == flow_fingerprint(baseline_run)


class TestInjectionOrder:
    @staticmethod
    def run_with_order(permute) -> object:
        soc = SPEC.build_soc()
        floorplan = SPEC.build_floorplan(soc)
        rates = assign_rates(SPEC.cluster_field(0), floorplan)
        seed = SPEC.campaign_seed(0)
        inner = clustered_sampler(SPEC, rates, seed)

        def sampler(index, memory):
            return permute(inner(index, memory))

        campaign = DiagnosisCampaign(
            soc,
            seed=seed,
            spares_per_memory=SPEC.spares_per_memory,
            backend=SPEC.backend,
            sampler=sampler,
        )
        return campaign.run(include_baseline=True, repair=True)

    @pytest.mark.parametrize(
        "permute",
        [
            lambda faults: list(reversed(faults)),
            lambda faults: faults[1::2] + faults[::2],
        ],
        ids=["reversed", "interleaved"],
    )
    def test_permuting_fault_attachment_order_is_a_no_op(self, permute):
        reference = self.run_with_order(lambda faults: faults)
        permuted = self.run_with_order(permute)
        assert permuted.proposed.failures == reference.proposed.failures
        assert permuted.baseline.localized == reference.baseline.localized
        assert permuted.reduction_factor == reference.reduction_factor
        assert permuted.verification_passed == reference.verification_passed


class TestFloorplanSymmetry:
    DIE = SPEC.die_size

    @staticmethod
    def transform_floorplan(floorplan, transform) -> Floorplan:
        clone = Floorplan.name_seeded(floorplan.soc, die_size=floorplan.die_size)
        clone.placements = [
            Placement(p.memory_name, *transform(p.x, p.y))
            for p in floorplan.placements
        ]
        return clone

    @pytest.mark.parametrize(
        "transform_name",
        ["reflect_x", "reflect_y", "translate", "transpose"],
    )
    def test_symmetry_preserves_rates_and_flow(self, transform_name):
        die = self.DIE
        transforms = {
            "reflect_x": lambda x, y: (die - x, y),
            "reflect_y": lambda x, y: (x, die - y),
            # A common translation preserves all relative distances even
            # though it moves points off the nominal die.
            "translate": lambda x, y: (x + 13.5, y - 7.25),
            "transpose": lambda x, y: (y, x),
        }
        transform = transforms[transform_name]
        soc = SPEC.build_soc()
        floorplan = SPEC.build_floorplan(soc)
        field = SPEC.cluster_field(0)
        moved_field = ClusterField(
            centers=tuple(transform(x, y) for x, y in field.centers),
            base_rate=field.base_rate,
            peak_rate=field.peak_rate,
            radius=field.radius,
            max_rate=field.max_rate,
        )
        moved_floorplan = self.transform_floorplan(floorplan, transform)

        rates = assign_rates(field, floorplan)
        moved_rates = assign_rates(moved_field, moved_floorplan)
        assert moved_rates == pytest.approx(rates)

        # Equal rate assignments force the whole downstream flow to be
        # identical: run both through the campaign machinery end to end.
        seed = SPEC.campaign_seed(0)
        reports = []
        for rate_map in (rates, moved_rates):
            campaign = DiagnosisCampaign(
                soc,
                seed=seed,
                spares_per_memory=SPEC.spares_per_memory,
                backend=SPEC.backend,
                sampler=clustered_sampler(SPEC, rate_map, seed),
            )
            reports.append(campaign.run(include_baseline=True, repair=True))
        original, moved = reports
        assert moved.proposed.failures == original.proposed.failures
        assert moved.baseline.localized == original.baseline.localized
        assert moved.reduction_factor == original.reduction_factor
