"""Cluster-field construction, rate assignment and name-keyed placement."""

from __future__ import annotations

import math

import pytest

from repro.scenarios.cluster import (
    ClusterField,
    assign_rates,
    sample_cluster_centers,
)
from repro.scenarios.spec import ScenarioSpec
from repro.soc.floorplan import Floorplan


class TestClusterField:
    def test_base_rate_far_from_centers(self):
        field = ClusterField(
            centers=((0.0, 0.0),), base_rate=0.004, peak_rate=0.05, radius=2.0
        )
        assert field.rate_at(90.0, 90.0) == pytest.approx(0.004, abs=1e-6)

    def test_peak_at_center(self):
        field = ClusterField(
            centers=((10.0, 10.0),), base_rate=0.004, peak_rate=0.05, radius=5.0
        )
        assert field.rate_at(10.0, 10.0) == pytest.approx(0.054)

    def test_manhattan_decay(self):
        field = ClusterField(
            centers=((0.0, 0.0),), base_rate=0.0, peak_rate=0.1, radius=10.0
        )
        # (3, 4) is Manhattan distance 7, not Euclidean 5.
        assert field.rate_at(3.0, 4.0) == pytest.approx(0.1 * math.exp(-0.7))

    def test_centers_superpose(self):
        single = ClusterField(
            centers=((0.0, 0.0),), base_rate=0.0, peak_rate=0.02, radius=8.0
        )
        double = ClusterField(
            centers=((0.0, 0.0), (0.0, 0.0)),
            base_rate=0.0,
            peak_rate=0.02,
            radius=8.0,
        )
        assert double.rate_at(5.0, 0.0) == pytest.approx(
            2 * single.rate_at(5.0, 0.0)
        )

    def test_no_centers_is_uniform(self):
        field = ClusterField(centers=(), base_rate=0.01, peak_rate=0.5, radius=10.0)
        assert field.rate_at(1.0, 2.0) == field.rate_at(80.0, 9.0) == 0.01

    def test_mean_rate_over_placements(self):
        spec = ScenarioSpec(shapes=((8, 4, "a"), (8, 4, "b")))
        floorplan = spec.build_floorplan()
        field = spec.cluster_field(0)
        rates = assign_rates(field, floorplan)
        assert field.mean_rate(floorplan.placements) == pytest.approx(
            sum(rates.values()) / len(rates)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterField(centers=(), base_rate=-0.1, peak_rate=0.1, radius=1.0)
        with pytest.raises(ValueError):
            ClusterField(centers=(), base_rate=0.1, peak_rate=0.1, radius=0.0)
        with pytest.raises(ValueError):
            ClusterField(
                centers=(), base_rate=0.3, peak_rate=0.1, radius=1.0, max_rate=0.2
            )
        with pytest.raises(ValueError):
            ClusterField(centers=(), base_rate=0.0, peak_rate=0.1, radius=1.0).mean_rate([])


class TestCenterSampling:
    def test_deterministic_per_campaign(self):
        assert sample_cluster_centers(3, 50.0, 7, 2) == sample_cluster_centers(
            3, 50.0, 7, 2
        )

    def test_distinct_per_campaign_and_seed(self):
        base = sample_cluster_centers(3, 50.0, 7, 2)
        assert sample_cluster_centers(3, 50.0, 7, 3) != base
        assert sample_cluster_centers(3, 50.0, 8, 2) != base

    def test_zero_clusters(self):
        assert sample_cluster_centers(0, 50.0, 7, 0) == ()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sample_cluster_centers(-1, 50.0, 0, 0)
        with pytest.raises(ValueError):
            sample_cluster_centers(1, 0.0, 0, 0)


class TestNameSeededFloorplan:
    def test_placement_depends_on_name_not_order(self):
        forward = ScenarioSpec(shapes=((8, 4, "a"), (8, 4, "b"), (8, 4, "c")))
        backward = ScenarioSpec(shapes=((8, 4, "c"), (8, 4, "b"), (8, 4, "a")))
        fwd = forward.build_floorplan()
        bwd = backward.build_floorplan()
        for name in ("a", "b", "c"):
            assert fwd.placement_of(name) == bwd.placement_of(name)

    def test_placements_on_die(self):
        plan = ScenarioSpec(shapes=tuple((8, 4, f"m{i}") for i in range(6))).build_floorplan()
        for placement in plan.placements:
            assert 0.0 <= placement.x <= 100.0
            assert 0.0 <= placement.y <= 100.0

    def test_seed_moves_placements(self):
        spec_a = ScenarioSpec(shapes=((8, 4, "a"),), placement_seed=0)
        spec_b = ScenarioSpec(shapes=((8, 4, "a"),), placement_seed=1)
        assert spec_a.build_floorplan().placement_of("a") != (
            spec_b.build_floorplan().placement_of("a")
        )

    def test_unknown_memory_raises(self):
        plan = ScenarioSpec(shapes=((8, 4, "a"),)).build_floorplan()
        with pytest.raises(KeyError):
            plan.placement_of("nope")

    def test_distance_helpers_still_work(self):
        spec = ScenarioSpec(shapes=((8, 4, "a"), (8, 4, "b")))
        plan = spec.build_floorplan()
        assert plan.distance_to_controller("a") >= 0.0
        assert plan.total_star_length() > 0.0

    def test_default_floorplan_constructor_unchanged(self):
        spec = ScenarioSpec(shapes=((8, 4, "a"), (8, 4, "b")))
        plan = Floorplan(spec.build_soc(), die_size=60.0, rng=3)
        assert len(plan.placements) == 2
        assert plan.controller_xy == (30.0, 30.0)
