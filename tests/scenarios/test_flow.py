"""Scenario spec validation, flow staging and fleet-runner behaviour."""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import (
    SCENARIO_PRESETS,
    ScenarioSpec,
    preset_spec,
    run_scenario_campaign,
    run_scenario_fleet,
    summarize_scenario_campaign,
)

SMALL = ScenarioSpec(
    shapes=((16, 8, "fl_wide"), (12, 6, "fl_narrow")),
    campaigns=2,
    master_seed=5,
    base_defect_rate=0.02,
    cluster_count=1,
    cluster_radius=25.0,
    cluster_peak_rate=0.05,
    intermittent_rate=0.02,
    upset_probability=0.6,
    spares_per_memory=16,
    backend="auto",
)


class TestSpecValidation:
    def test_rejects_bad_values(self):
        for kwargs in (
            dict(campaigns=0),
            dict(base_defect_rate=1.5),
            dict(cluster_radius=0.0),
            dict(cluster_count=-1),
            dict(max_retest_rounds=-1),
            dict(intermittent_rate=-0.1),
            dict(upset_probability=2.0),
            dict(soc="nonsense"),
            dict(name=""),
            dict(geometry=(8,)),
            dict(shapes=()),
            dict(shapes=((8, 4, "dup"), (8, 4, "dup"))),
            dict(defect_weights=(1.0, 1.0)),
            dict(base_defect_rate=0.3, max_defect_rate=0.2),
        ):
            with pytest.raises(ValueError):
                ScenarioSpec(**kwargs)

    def test_build_soc_variants(self):
        assert ScenarioSpec(soc="buffer-cluster").build_soc().name == "buffer-cluster"
        uniform = ScenarioSpec(geometry=(32, 8), memories=3).build_soc()
        assert uniform.memory_count == 3
        assert {(g.words, g.bits) for g in uniform.geometries} == {(32, 8)}
        explicit = SMALL.build_soc()
        assert [g.name for g in explicit.geometries] == ["fl_wide", "fl_narrow"]
        default = ScenarioSpec(memories=4).build_soc()
        assert default.memory_count == 4

    def test_build_profile(self):
        assert ScenarioSpec().build_profile() is None
        profile = ScenarioSpec(defect_weights=(1.0, 0.0, 0.0, 0.0)).build_profile()
        assert profile is not None

    def test_explicit_centers_override_sampling(self):
        spec = dataclasses.replace(SMALL, cluster_centers=((1.0, 2.0),))
        assert spec.cluster_field(0).centers == ((1.0, 2.0),)
        assert spec.cluster_field(5).centers == ((1.0, 2.0),)

    def test_presets(self):
        for name in SCENARIO_PRESETS:
            spec = preset_spec(name, campaigns=1)
            assert spec.campaigns == 1
            assert spec.name == name
        with pytest.raises(ValueError, match="unknown scenario preset"):
            preset_spec("nope")


class TestFlowStaging:
    def test_flow_runs_all_stages(self):
        report = run_scenario_campaign(SMALL, 0)
        stage_names = [stage.stage for stage in report.stages]
        assert stage_names[0] == "test"
        assert "burn-in" in stage_names
        assert report.injected_faults > 0
        assert report.baseline is not None
        assert report.reduction_factor > 1.0
        assert 0.0 <= report.escape_rate <= 1.0
        assert report.intermittent_faults > 0
        assert len(report.summary_lines()) >= 4

    def test_no_baseline_and_no_burn_in(self):
        spec = dataclasses.replace(
            SMALL, include_baseline=False, burn_in=False, intermittent_rate=0.0
        )
        report = run_scenario_campaign(spec, 0)
        assert report.baseline is None
        assert report.reduction_factor is None
        assert report.intermittent_faults == 0
        assert all(stage.stage != "burn-in" for stage in report.stages)

    def test_clean_bank_converges_immediately(self):
        spec = dataclasses.replace(
            SMALL,
            base_defect_rate=0.0,
            cluster_peak_rate=0.0,
            cluster_count=0,
            intermittent_rate=0.0,
            include_baseline=False,
        )
        report = run_scenario_campaign(spec, 0)
        assert report.injected_faults == 0
        assert report.retest_rounds == 0
        assert report.retest_converged
        assert report.escape_rate == 0.0
        assert report.localization_rate == 1.0

    def test_spare_exhaustion_stalls_without_burning_rounds(self):
        spec = dataclasses.replace(
            SMALL,
            spares_per_memory=0,
            include_baseline=False,
            burn_in=False,
            max_retest_rounds=5,
        )
        report = run_scenario_campaign(spec, 0)
        assert not report.retest_converged
        # The zero-progress repair round stalls the loop immediately.
        assert report.retest_rounds == 1
        repair_stages = [s for s in report.stages if s.stage == "repair"]
        assert repair_stages[-1].repaired_words == 0
        assert all(s.stage != "retest" for s in report.stages)

    def test_zero_retest_rounds_allowed(self):
        spec = dataclasses.replace(SMALL, max_retest_rounds=0, burn_in=False)
        report = run_scenario_campaign(spec, 0)
        assert report.retest_rounds == 0
        assert not report.retest_converged

    def test_summary_reduction(self):
        report = run_scenario_campaign(SMALL, 1)
        summary = summarize_scenario_campaign(report)
        assert summary.scenario == SMALL.name
        assert summary.index == 1
        assert summary.seed == SMALL.campaign_seed(1)
        assert summary.escape_rate == report.escape_rate
        assert summary.retest_rounds == report.retest_rounds
        assert summary.assigned_rate_mean == pytest.approx(
            report.mean_assigned_rate
        )
        assert summary.intermittent_faults == report.intermittent_faults


class TestScenarioFleet:
    def test_fleet_report_carries_scenario_aggregates(self):
        report = run_scenario_fleet(SMALL, workers=1)
        assert report.campaigns == SMALL.campaigns
        assert report.scenario_campaigns == SMALL.campaigns
        assert report.escape_rate.count == SMALL.campaigns
        assert report.assigned_rate.count == SMALL.campaigns
        assert report.retest_convergence is not None
        assert report.intermittent_injected > 0
        payload = report.to_json_dict()
        assert payload["scenario"]["campaigns"] == SMALL.campaigns
        text = "\n".join(report.summary_lines())
        assert "scenario flows" in text and "clustered rate" in text

    def test_plain_fleet_report_has_no_scenario_block(self):
        from repro.engine import FleetSpec, run_fleet

        report = run_fleet(
            FleetSpec(memories=2, campaigns=1, defect_rate=0.004), workers=1
        )
        assert report.scenario_campaigns == 0
        assert "scenario" not in report.to_json_dict()
        assert report.retest_convergence is None
        assert report.intermittent_detection_rate is None

    def test_campaign_summary_independent_of_position(self):
        direct = run_scenario_campaign(SMALL, 1)
        fleet_equivalent = run_scenario_campaign(SMALL, 1)
        assert summarize_scenario_campaign(direct) == summarize_scenario_campaign(
            fleet_equivalent
        )
