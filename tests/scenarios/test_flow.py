"""Scenario spec validation, flow staging and fleet-runner behaviour."""

from __future__ import annotations

import dataclasses

import pytest

from repro.scenarios import (
    SCENARIO_PRESETS,
    ScenarioSpec,
    preset_spec,
    run_scenario_campaign,
    run_scenario_fleet,
    summarize_scenario_campaign,
)

SMALL = ScenarioSpec(
    shapes=((16, 8, "fl_wide"), (12, 6, "fl_narrow")),
    campaigns=2,
    master_seed=5,
    base_defect_rate=0.02,
    cluster_count=1,
    cluster_radius=25.0,
    cluster_peak_rate=0.05,
    intermittent_rate=0.02,
    upset_probability=0.6,
    spares_per_memory=16,
    backend="auto",
)


class TestSpecValidation:
    def test_rejects_bad_values(self):
        for kwargs in (
            dict(campaigns=0),
            dict(base_defect_rate=1.5),
            dict(cluster_radius=0.0),
            dict(cluster_count=-1),
            dict(max_retest_rounds=-1),
            dict(intermittent_rate=-0.1),
            dict(upset_probability=2.0),
            dict(soc="nonsense"),
            dict(name=""),
            dict(geometry=(8,)),
            dict(shapes=()),
            dict(shapes=((8, 4, "dup"), (8, 4, "dup"))),
            dict(defect_weights=(1.0, 1.0)),
            dict(base_defect_rate=0.3, max_defect_rate=0.2),
        ):
            with pytest.raises(ValueError):
                ScenarioSpec(**kwargs)

    def test_build_soc_variants(self):
        assert ScenarioSpec(soc="buffer-cluster").build_soc().name == "buffer-cluster"
        uniform = ScenarioSpec(geometry=(32, 8), memories=3).build_soc()
        assert uniform.memory_count == 3
        assert {(g.words, g.bits) for g in uniform.geometries} == {(32, 8)}
        explicit = SMALL.build_soc()
        assert [g.name for g in explicit.geometries] == ["fl_wide", "fl_narrow"]
        default = ScenarioSpec(memories=4).build_soc()
        assert default.memory_count == 4

    def test_build_profile(self):
        assert ScenarioSpec().build_profile() is None
        profile = ScenarioSpec(defect_weights=(1.0, 0.0, 0.0, 0.0)).build_profile()
        assert profile is not None

    def test_explicit_centers_override_sampling(self):
        spec = dataclasses.replace(SMALL, cluster_centers=((1.0, 2.0),))
        assert spec.cluster_field(0).centers == ((1.0, 2.0),)
        assert spec.cluster_field(5).centers == ((1.0, 2.0),)

    def test_presets(self):
        for name in SCENARIO_PRESETS:
            spec = preset_spec(name, campaigns=1)
            assert spec.campaigns == 1
            assert spec.name == name
        with pytest.raises(ValueError, match="unknown scenario preset"):
            preset_spec("nope")


class TestFlowStaging:
    def test_flow_runs_all_stages(self):
        report = run_scenario_campaign(SMALL, 0)
        stage_names = [stage.stage for stage in report.stages]
        assert stage_names[0] == "test"
        assert "burn-in" in stage_names
        assert report.injected_faults > 0
        assert report.baseline is not None
        assert report.reduction_factor > 1.0
        assert 0.0 <= report.escape_rate <= 1.0
        assert report.intermittent_faults > 0
        assert len(report.summary_lines()) >= 4

    def test_no_baseline_and_no_burn_in(self):
        spec = dataclasses.replace(
            SMALL, include_baseline=False, burn_in=False, intermittent_rate=0.0
        )
        report = run_scenario_campaign(spec, 0)
        assert report.baseline is None
        assert report.reduction_factor is None
        assert report.intermittent_faults == 0
        assert all(stage.stage != "burn-in" for stage in report.stages)

    def test_clean_bank_converges_immediately(self):
        spec = dataclasses.replace(
            SMALL,
            base_defect_rate=0.0,
            cluster_peak_rate=0.0,
            cluster_count=0,
            intermittent_rate=0.0,
            include_baseline=False,
        )
        report = run_scenario_campaign(spec, 0)
        assert report.injected_faults == 0
        assert report.retest_rounds == 0
        assert report.retest_converged
        assert report.escape_rate == 0.0
        assert report.localization_rate == 1.0

    def test_spare_exhaustion_stalls_without_burning_rounds(self):
        spec = dataclasses.replace(
            SMALL,
            spares_per_memory=0,
            include_baseline=False,
            burn_in=False,
            max_retest_rounds=5,
        )
        report = run_scenario_campaign(spec, 0)
        assert not report.retest_converged
        # The zero-progress repair round stalls the loop immediately.
        assert report.retest_rounds == 1
        repair_stages = [s for s in report.stages if s.stage == "repair"]
        assert repair_stages[-1].repaired_words == 0
        assert all(s.stage != "retest" for s in report.stages)

    def test_zero_retest_rounds_allowed(self):
        spec = dataclasses.replace(SMALL, max_retest_rounds=0, burn_in=False)
        report = run_scenario_campaign(spec, 0)
        assert report.retest_rounds == 0
        assert not report.retest_converged

    def test_summary_reduction(self):
        report = run_scenario_campaign(SMALL, 1)
        summary = summarize_scenario_campaign(report)
        assert summary.scenario == SMALL.name
        assert summary.index == 1
        assert summary.seed == SMALL.campaign_seed(1)
        assert summary.escape_rate == report.escape_rate
        assert summary.retest_rounds == report.retest_rounds
        assert summary.assigned_rate_mean == pytest.approx(
            report.mean_assigned_rate
        )
        assert summary.intermittent_faults == report.intermittent_faults


class TestScenarioFleet:
    def test_fleet_report_carries_scenario_aggregates(self):
        report = run_scenario_fleet(SMALL, workers=1)
        assert report.campaigns == SMALL.campaigns
        assert report.scenario_campaigns == SMALL.campaigns
        assert report.escape_rate.count == SMALL.campaigns
        assert report.assigned_rate.count == SMALL.campaigns
        assert report.retest_convergence is not None
        assert report.intermittent_injected > 0
        payload = report.to_json_dict()
        assert payload["scenario"]["campaigns"] == SMALL.campaigns
        text = "\n".join(report.summary_lines())
        assert "scenario flows" in text and "clustered rate" in text

    def test_plain_fleet_report_has_no_scenario_block(self):
        from repro.engine import FleetSpec, run_fleet

        report = run_fleet(
            FleetSpec(memories=2, campaigns=1, defect_rate=0.004), workers=1
        )
        assert report.scenario_campaigns == 0
        assert "scenario" not in report.to_json_dict()
        assert report.retest_convergence is None
        assert report.intermittent_detection_rate is None

    def test_campaign_summary_independent_of_position(self):
        direct = run_scenario_campaign(SMALL, 1)
        fleet_equivalent = run_scenario_campaign(SMALL, 1)
        assert summarize_scenario_campaign(direct) == summarize_scenario_campaign(
            fleet_equivalent
        )


class TestEccFlow:
    ECC = dataclasses.replace(
        SMALL,
        ecc="secded",
        include_baseline=False,
        intermittent_rate=0.0,
        burn_in=False,
    )

    def test_spec_validates_ecc_and_spares(self):
        for kwargs in (
            dict(ecc="bch"),
            dict(spare_rows=-1),
            dict(spare_cols=-2),
        ):
            with pytest.raises(ValueError):
                ScenarioSpec(**kwargs)
        assert ScenarioSpec(ecc="secded").build_ecc().scheme == "secded"
        assert ScenarioSpec().build_ecc() is None
        assert not ScenarioSpec().use_bisr
        assert ScenarioSpec(spare_cols=1).use_bisr

    def test_ecc_campaign_attributes_masked_escapes(self):
        report = run_scenario_campaign(self.ECC, 0)
        assert report.ecc_enabled
        assert report.ecc_corrected_reads > 0
        assert 0 <= report.ecc_masked_escaped <= report.escaped_faults
        assert report.ecc_masked_escape_rate == pytest.approx(
            report.ecc_masked_escaped / report.injected_faults
        )
        summary = summarize_scenario_campaign(report)
        assert summary.ecc_masked_escape_rate == report.ecc_masked_escape_rate
        assert summary.ecc_corrected_reads == report.ecc_corrected_reads
        assert any("ecc" in line for line in report.summary_lines())

    def test_raw_campaign_has_no_ecc_rate(self):
        spec = dataclasses.replace(self.ECC, ecc=None)
        report = run_scenario_campaign(spec, 0)
        assert not report.ecc_enabled
        assert report.ecc_masked_escape_rate is None
        summary = summarize_scenario_campaign(report)
        assert summary.ecc_masked_escape_rate is None
        assert summary.ecc_corrected_reads is None

    def test_ecc_masking_raises_escape_rate(self):
        """The measured-vs-analytic gap: the same campaign behind SEC-DED
        escapes at least as much as raw observation (single-bit defects
        are hidden), and the masked-escape counter owns the difference."""
        raw = run_scenario_campaign(dataclasses.replace(self.ECC, ecc=None), 0)
        ecc = run_scenario_campaign(self.ECC, 0)
        assert ecc.escape_rate >= raw.escape_rate
        assert ecc.escaped_faults - raw.escaped_faults <= ecc.ecc_masked_escaped


class TestBisrFlow:
    BISR = dataclasses.replace(
        SMALL,
        spare_rows=4,
        spare_cols=2,
        include_baseline=False,
        intermittent_rate=0.0,
        burn_in=False,
    )

    def test_bisr_flow_reports_yield_and_spares(self):
        report = run_scenario_campaign(self.BISR, 0)
        repair_stages = [s for s in report.stages if s.stage == "repair"]
        assert repair_stages
        assert all(s.repaired_words is None for s in repair_stages)
        assert all(s.repaired_rows is not None for s in repair_stages)
        assert report.repaired_rows + report.repaired_cols == sum(
            s.repaired_rows + s.repaired_cols for s in repair_stages
        )
        assert report.repair_yield is not None
        assert 0.0 <= report.repair_yield <= 1.0
        summary = summarize_scenario_campaign(report)
        assert summary.repair_yield == report.repair_yield
        assert any("bisr" in line for line in report.summary_lines())

    def test_word_spare_flow_has_no_yield(self):
        report = run_scenario_campaign(
            dataclasses.replace(self.BISR, spare_rows=0, spare_cols=0), 0
        )
        assert report.repair_yield is None
        assert report.repaired_rows == 0
        assert summarize_scenario_campaign(report).repair_yield is None


class TestBurnInAccounting:
    def test_burn_in_round_follows_every_retest(self):
        report = run_scenario_campaign(SMALL, 0)
        burn = [s for s in report.stages if s.stage == "burn-in"]
        assert len(burn) == 1
        assert burn[0].round == report.retest_rounds + 1

    def test_intermittent_scored_against_burn_session_only(self):
        """An intermittent fault that never upsets (p = 0) must count as
        undetected even when earlier stages failed its cell for
        manufacturing reasons: detection is scored against the burn-in
        session's own observations, not the flow-wide union."""
        spec = dataclasses.replace(
            SMALL,
            defect_weights=(1.0, 1.0, 0.0, 0.0),
            intermittent_rate=0.5,
            upset_probability=0.0,
            include_baseline=False,
        )
        report = run_scenario_campaign(spec, 0)
        assert report.retest_converged  # repairs detached everything
        # The test is only meaningful if silent intermittent victims
        # overlap cells the flow detected for manufacturing reasons.
        from repro.scenarios.flow import burn_in_population

        overlap = 0
        for words, bits, name in spec.shapes:
            detected = report.proposed.detected_cells(name)
            for fault in burn_in_population(
                spec, _memory_named(spec, name), report.seed
            ):
                overlap += bool(detected & set(fault.victims))
        assert overlap > 0
        assert report.intermittent_faults > 0
        assert report.intermittent_detected == 0


def _memory_named(spec, name):
    """Build the named memory of a spec's bank (for population replay)."""
    from repro.memory.sram import SRAM

    for geometry in spec.build_soc().geometries:
        if geometry.name == name:
            return SRAM(geometry)
    raise KeyError(name)


class TestEscapeMonotonicity:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_escape_rate_non_increasing_in_spares(self, index):
        """Deterministic-profile campaigns (stuck-at + transition, no
        burn-in layer) must never escape *more* when given more spares."""
        base = dataclasses.replace(
            SMALL,
            defect_weights=(1.0, 1.0, 0.0, 0.0),
            base_defect_rate=0.04,
            intermittent_rate=0.0,
            burn_in=False,
            include_baseline=False,
        )
        rates = [
            run_scenario_campaign(
                dataclasses.replace(base, spares_per_memory=spares), index
            ).escape_rate
            for spares in (0, 1, 2, 4, 8, 16)
        ]
        assert all(
            later <= earlier for earlier, later in zip(rates, rates[1:])
        ), rates
