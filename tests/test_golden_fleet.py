"""Golden-file regression for the batched fleet tier plus CLI contracts.

One canonical batched fleet run (fixed seed, mixed-geometry case-study
SoC) is frozen as ``tests/golden/fleet_batched.json``: the spec and the
report's deterministic content (wall-clock fields excluded, as in the
checkpoint/resume contract).  Regenerate after an intentional behaviour
change with::

    PYTHONPATH=src python -m pytest tests/test_golden_fleet.py --update-golden

The CLI classes pin the observable contract of ``repro fleet --backend
batched`` and of ``--checkpoint``/``--resume``: exit codes and JSON
shape, resumed payloads identical to uninterrupted ones, and stale
checkpoints rejected with exit code 2.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine.fleet import FleetSpec, run_fleet

GOLDEN_PATH = Path(__file__).parent / "golden" / "fleet_batched.json"

SPEC = FleetSpec(
    soc="case-study",
    memories=6,
    campaigns=4,
    defect_rate=0.004,
    master_seed=2026,
    backend="batched",
)


def canonical_fleet_run() -> dict:
    report = run_fleet(SPEC, workers=1, chunk_size=2)
    return {"spec": SPEC.to_dict(), "report": report.deterministic_dict()}


def test_batched_fleet_matches_golden(update_golden):
    actual = canonical_fleet_run()
    if update_golden:
        GOLDEN_PATH.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"golden fixture {GOLDEN_PATH.name} rewritten")
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; run pytest with --update-golden"
    )
    expected = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert actual == expected


def test_golden_fleet_is_nontrivial(update_golden):
    if update_golden:
        pytest.skip("fixture being rewritten")
    report = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["report"]
    assert report["campaigns"] == SPEC.campaigns
    assert report["total_faults"] > 0
    assert report["reduction_factor"]["count"] > 0
    assert report["localization"]["mean"] > 0.5


def fleet_argv(*extra: str) -> list[str]:
    return [
        "fleet", "--campaigns", "4", "--memories", "6", "--workers", "1",
        "--defect-rate", "0.004", "--seed", "2026", "--chunk-size", "2",
        "--json", *extra,
    ]


def payload_of(capsys) -> dict:
    return json.loads(capsys.readouterr().out)


def strip_timing(payload: dict) -> dict:
    return {
        key: value
        for key, value in payload.items()
        # Run metadata: wall clock and plan-cache traffic are not part of
        # the deterministic report contract.
        if key not in ("elapsed_s", "campaigns_per_sec", "plan_cache")
    }


class TestFleetCliBatched:
    def test_batched_backend_json_matches_golden_report(self, capsys, update_golden):
        if update_golden:
            pytest.skip("fixture being rewritten")
        assert main(fleet_argv("--backend", "batched")) == 0
        payload = payload_of(capsys)
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert payload["spec"] == golden["spec"]
        assert strip_timing(payload) == {"spec": golden["spec"], **golden["report"]}

    def test_json_shape_has_fleet_sections(self, capsys):
        assert main(fleet_argv("--backend", "batched")) == 0
        payload = payload_of(capsys)
        for key in (
            "spec", "campaigns", "elapsed_s", "campaigns_per_sec",
            "localization", "reduction_factor", "reduction_histogram",
            "repaired_words", "yield_rate",
        ):
            assert key in payload, key
        assert payload["spec"]["backend"] == "batched"


class TestFleetCliResume:
    def test_checkpoint_then_resume_reproduces_payload(self, capsys, tmp_path):
        store = str(tmp_path / "ckpt")
        assert main(
            fleet_argv("--backend", "batched", "--checkpoint", store)
        ) == 0
        first = payload_of(capsys)
        assert main(
            fleet_argv("--backend", "batched", "--checkpoint", store, "--resume")
        ) == 0
        second = payload_of(capsys)
        assert strip_timing(first) == strip_timing(second)
        assert (tmp_path / "ckpt" / "manifest.json").exists()

    def test_resume_without_checkpoint_is_exit_2(self, capsys):
        assert main(fleet_argv("--resume")) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_stale_checkpoint_is_exit_2(self, capsys, tmp_path):
        store = str(tmp_path / "ckpt")
        assert main(
            fleet_argv("--backend", "batched", "--checkpoint", store)
        ) == 0
        capsys.readouterr()
        stale = [
            arg if arg != "2026" else "1" for arg in fleet_argv(
                "--backend", "batched", "--checkpoint", store
            )
        ]
        assert main(stale) == 2
        assert "stale checkpoint" in capsys.readouterr().err

    def test_scenario_resume_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "sc")
        argv = [
            "scenario", "--campaigns", "2", "--memories", "4", "--workers", "1",
            "--seed", "5", "--no-baseline", "--json",
            "--checkpoint", store,
        ]
        assert main(argv) == 0
        first = payload_of(capsys)
        assert main(argv + ["--resume"]) == 0
        second = payload_of(capsys)
        assert strip_timing(first) == strip_timing(second)

    def test_scenario_resume_without_checkpoint_is_exit_2(self, capsys):
        assert main(
            ["scenario", "--campaigns", "2", "--workers", "1", "--resume"]
        ) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_scenario_checkpoint_with_sweep_is_exit_2(self, capsys, tmp_path):
        assert main(
            [
                "scenario", "--campaigns", "2", "--workers", "1",
                "--checkpoint", str(tmp_path / "x"), "--sweep-radii", "10,20",
            ]
        ) == 2
        assert "--sweep-radii" in capsys.readouterr().err
