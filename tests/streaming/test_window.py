"""Window reports, burst detection and bounded windowed aggregation."""

from __future__ import annotations

import json

import pytest

from repro.streaming import (
    BurstDetector,
    WindowAggregator,
    WindowReport,
    validate_window_metrics,
    validate_window_metrics_line,
)


def report(index: int = 0, events: int = 3, **overrides) -> WindowReport:
    config = dict(
        index=index,
        start_ns=index * 1000.0,
        duration_ns=1000.0,
        events=events,
        seu_events=events // 2,
        int_read_events=events - events // 2,
        affected_memories=min(events, 2),
        detected_events=events,
        escaped_events=0,
        sweep_failures=events * 4,
        sweep_time_ns=9000.0 if events else 0.0,
        elapsed_s=0.01,
    )
    config.update(overrides)
    return WindowReport(**config)


class TestWindowReport:
    def test_rates_none_on_empty_window(self):
        empty = report(events=0, seu_events=0, int_read_events=0,
                       affected_memories=0, detected_events=0,
                       sweep_failures=0)
        assert empty.detection_rate is None
        assert empty.escape_rate is None

    def test_rates_on_populated_window(self):
        mixed = report(events=4, detected_events=3, escaped_events=1)
        assert mixed.detection_rate == pytest.approx(0.75)
        assert mixed.escape_rate == pytest.approx(0.25)

    def test_deterministic_dict_drops_only_wall_clock(self):
        payload = report().to_json_dict()
        deterministic = report().deterministic_dict()
        assert "elapsed_s" in payload
        assert "elapsed_s" not in deterministic
        # Burst outcome is deterministic (count-sequence function) and
        # must stay inside the byte-compared content.
        assert "burst_detected" in deterministic
        assert set(payload) - set(deterministic) == {"elapsed_s"}

    def test_digest_ignores_wall_clock(self):
        fast, slow = report(elapsed_s=0.001), report(elapsed_s=9.0)
        assert fast.digest() == slow.digest()
        assert fast.digest() != report(events=5).digest()


class TestBurstDetector:
    def test_no_flags_before_min_history(self):
        detector = BurstDetector(min_history=4)
        for count in (50, 50, 50):
            flagged, score = detector.observe(count)
            assert not flagged and score is None

    def test_clear_spike_is_flagged(self):
        detector = BurstDetector()
        for _ in range(6):
            detector.observe(2)
        flagged, score = detector.observe(30)
        assert flagged and score > BurstDetector().threshold

    def test_flat_background_fluctuation_not_flagged(self):
        detector = BurstDetector()
        for _ in range(8):
            detector.observe(3)
        # The one-event sigma floor keeps +1 on a perfectly flat
        # baseline from scoring as an infinite-z outlier.
        flagged, score = detector.observe(4)
        assert not flagged
        assert score == pytest.approx(1.0)

    def test_state_roundtrip_continues_identically(self):
        counts = [2, 3, 2, 2, 4, 2, 9, 2, 3, 12, 2, 2]
        straight = BurstDetector()
        resumed = BurstDetector()
        straight_out, resumed_out = [], []
        for position, count in enumerate(counts):
            straight_out.append(straight.observe(count))
            if position == 5:
                resumed = BurstDetector.from_state(resumed.state_dict())
            resumed_out.append(resumed.observe(count))
        assert straight_out == resumed_out

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BurstDetector(history=0)
        with pytest.raises(ValueError):
            BurstDetector(threshold=0.0)
        with pytest.raises(ValueError):
            BurstDetector().observe(-1)


class TestWindowAggregator:
    def test_empty_aggregator_rates(self):
        aggregator = WindowAggregator()
        assert aggregator.detection_rate is None
        assert aggregator.escape_rate is None
        assert aggregator.burst_recall is None
        assert aggregator.windows_per_sec == 0.0

    def test_empty_windows_counted_without_sweep_samples(self):
        aggregator = WindowAggregator()
        aggregator.add(report(events=0, seu_events=0, int_read_events=0,
                              affected_memories=0, detected_events=0,
                              sweep_failures=0, sweep_time_ns=0.0))
        aggregator.add(report(index=1))
        assert aggregator.windows == 2
        assert aggregator.empty_windows == 1
        # Empty windows contribute no sweep-time or detection samples.
        assert aggregator.sweep_time_ns.count == 1
        assert aggregator.window_detection.count == 1
        assert aggregator.events_per_window.count == 2

    def test_digest_ring_is_bounded(self):
        aggregator = WindowAggregator(retain=4)
        for index in range(20):
            aggregator.add(report(index=index))
        kept = [window for window, _ in aggregator.recent_digests]
        assert kept == [16, 17, 18, 19]

    def test_burst_recall(self):
        aggregator = WindowAggregator()
        aggregator.add(report(index=0, burst_injected=True, burst_detected=True))
        aggregator.add(report(index=1, burst_injected=True))
        assert aggregator.burst_recall == pytest.approx(0.5)

    def test_summary_lines_render(self):
        aggregator = WindowAggregator()
        for index in range(3):
            aggregator.add(report(index=index))
        text = "\n".join(aggregator.summary_lines())
        assert "3 windows" in text
        assert "detection" in text

    def test_canonical_json_excludes_wall_clock(self):
        fast, slow = WindowAggregator(), WindowAggregator()
        fast.add(report(elapsed_s=0.001))
        slow.add(report(elapsed_s=5.0))
        assert fast.canonical_json() == slow.canonical_json()
        assert fast.elapsed_s != slow.elapsed_s


class TestMetricsSchema:
    def test_real_report_line_validates(self):
        line = json.dumps(report().to_json_dict())
        payload = validate_window_metrics_line(line)
        assert payload["window"] == 0

    def test_missing_key_rejected(self):
        payload = report().to_json_dict()
        payload.pop("events")
        with pytest.raises(ValueError, match="missing keys"):
            validate_window_metrics(payload)

    def test_bool_masquerading_as_count_rejected(self):
        payload = report().to_json_dict()
        payload["events"] = True  # bool is an int subclass; still wrong
        with pytest.raises(ValueError, match="must not be bool"):
            validate_window_metrics(payload)

    def test_mistyped_value_rejected(self):
        payload = report().to_json_dict()
        payload["detection_rate"] = "1.0"
        with pytest.raises(ValueError, match="detection_rate"):
            validate_window_metrics(payload)

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_window_metrics_line("[1, 2, 3]")
