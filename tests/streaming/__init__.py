"""Test package (unique module namespace for pytest collection)."""
