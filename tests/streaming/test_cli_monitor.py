"""The ``repro monitor`` subcommand: output modes, resume, exit codes."""

from __future__ import annotations

import json

import pytest

import repro.streaming
from repro.cli import main
from repro.streaming import validate_window_metrics_line

FAST = [
    "--windows", "4", "--memories", "4", "--events-per-window", "2",
    "--seed", "23",
]


class TestMonitorCommand:
    def test_human_output(self, capsys):
        assert main(["monitor", *FAST]) == 0
        out = capsys.readouterr().out
        assert "monitor: 4 windows" in out
        assert "stream: 4 windows" in out

    def test_json_output(self, capsys):
        assert main(["monitor", *FAST, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["windows"] == 4
        assert payload["spec"]["master_seed"] == 23

    def test_metrics_out_lines_validate(self, tmp_path, capsys):
        metrics = tmp_path / "windows.jsonl"
        assert main(["monitor", *FAST, "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        lines = metrics.read_text().splitlines()
        assert len(lines) == 4
        windows = [validate_window_metrics_line(line)["window"] for line in lines]
        assert windows == [0, 1, 2, 3]

    def test_resume_without_checkpoint_fails(self, capsys):
        assert main(["monitor", *FAST, "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_checkpoint_resume_continues(self, tmp_path, capsys):
        store = tmp_path / "ring"
        assert main(["monitor", *FAST, "--checkpoint", str(store)]) == 0
        capsys.readouterr()
        assert main(
            ["monitor", *FAST[:1], "8", *FAST[2:],
             "--checkpoint", str(store), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "resuming at window 4" in out
        assert "window      4" in out

    def test_stale_checkpoint_exits_2(self, tmp_path, capsys):
        store = tmp_path / "ring"
        assert main(["monitor", *FAST, "--checkpoint", str(store)]) == 0
        capsys.readouterr()
        assert main(
            ["monitor", *FAST[:-1], "99", "--checkpoint", str(store)]
        ) == 2
        assert "checkpoint error" in capsys.readouterr().err

    def test_forever_interrupt_stops_cleanly(self, capsys, monkeypatch):
        real = repro.streaming.StreamingMonitor

        class InterruptedMonitor(real):
            def windows(self):
                inner = super().windows()
                try:
                    yield next(inner)
                    raise KeyboardInterrupt
                finally:
                    inner.close()

        monkeypatch.setattr(
            repro.streaming, "StreamingMonitor", InterruptedMonitor
        )
        assert main(["monitor", "--forever", *FAST[2:]]) == 0
        out = capsys.readouterr().out
        assert "monitor: forever" in out
        assert "interrupted; stream stopped cleanly" in out
        assert "stream: 1 windows" in out

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["monitor", *FAST, "--trace-out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "chrome trace written" in out
        document = json.loads(trace.read_text())
        assert any(
            entry.get("name") == "stream.window"
            for entry in document["traceEvents"]
        )
