"""Event-timeline determinism, seekability and window geometry."""

from __future__ import annotations

import pytest

from repro.faults.intermittent import EVENT_KIND_INT_READ, EVENT_KIND_SEU
from repro.streaming import EventTimeline

CELLS = {"alpha": 64, "beta": 48, "gamma": 96}
WEIGHTS = {"alpha": 0.5, "beta": 0.2, "gamma": 0.3}


def timeline(**overrides) -> EventTimeline:
    config = dict(
        cells_by_memory=CELLS,
        weights=WEIGHTS,
        window_ns=1000.0,
        events_per_window=3.0,
        master_seed=17,
    )
    config.update(overrides)
    return EventTimeline(**config)


class TestDeterminism:
    def test_windows_are_pure_functions(self):
        assert timeline().events_for_window(5) == timeline().events_for_window(5)

    def test_seek_matches_sequential_iteration(self):
        tl = timeline()
        sequential = []
        iterator = tl.iter_events(start_window=0)
        for event in iterator:
            if event.window >= 4:
                break
            sequential.append(event)
        seeked = [
            event
            for window in range(4)
            for event in timeline().events_for_window(window)
        ]
        assert sequential == seeked

    def test_far_window_is_directly_addressable(self):
        # Seekability: no cheaper-path dependence on earlier windows.
        far = 10**9
        events = timeline().events_for_window(far)
        assert events == timeline().events_for_window(far)
        for event in events:
            assert event.window == far

    def test_master_seed_changes_the_draws(self):
        windows = range(12)
        a = [timeline(master_seed=1).events_for_window(w) for w in windows]
        b = [timeline(master_seed=2).events_for_window(w) for w in windows]
        assert a != b


class TestWindowGeometry:
    def test_edge_time_belongs_to_the_later_window(self):
        tl = timeline()
        # Half-open windows: an arrival exactly on the boundary is the
        # first instant of the *next* window, on every backend and
        # worker layout (assignment happens here, before any sweep).
        for k in (0, 1, 7, 12345):
            assert tl.window_of(k * tl.window_ns) == k
        assert tl.window_of(3 * tl.window_ns - 1e-9) == 2

    def test_events_stay_strictly_inside_their_window(self):
        tl = timeline(events_per_window=6.0)
        for window in range(20):
            start = tl.window_start_ns(window)
            for event in tl.events_for_window(window):
                assert start <= event.time_ns < start + tl.window_ns
                assert tl.window_of(event.time_ns) == window

    def test_events_sorted_by_arrival_time(self):
        for window in range(10):
            events = timeline(events_per_window=6.0).events_for_window(window)
            times = [event.time_ns for event in events]
            assert times == sorted(times)

    def test_zero_mean_draws_nothing(self):
        tl = timeline(events_per_window=0.0)
        assert all(tl.events_for_window(w) == () for w in range(50))


class TestKindsAndPlacement:
    def test_seu_fraction_extremes(self):
        all_seu = timeline(seu_fraction=1.0)
        all_int = timeline(seu_fraction=0.0)
        for window in range(10):
            for event in all_seu.events_for_window(window):
                assert event.kind == EVENT_KIND_SEU
            for event in all_int.events_for_window(window):
                assert event.kind == EVENT_KIND_INT_READ

    def test_cell_indices_in_geometry_range(self):
        tl = timeline(events_per_window=5.0)
        for window in range(20):
            for event in tl.events_for_window(window):
                assert 0 <= event.cell_index < CELLS[event.memory]

    def test_zero_weights_fall_back_to_cell_counts(self):
        tl = timeline(weights={name: 0.0 for name in CELLS})
        seen = {
            event.memory
            for window in range(40)
            for event in tl.events_for_window(window)
        }
        assert seen  # draws still land somewhere sensible
        assert seen <= set(CELLS)


class TestBursts:
    def test_burst_flag_is_deterministic(self):
        tl = timeline(burst_probability=0.3)
        flags = [tl.burst_in_window(w) for w in range(64)]
        assert flags == [timeline(burst_probability=0.3).burst_in_window(w) for w in range(64)]
        assert any(flags) and not all(flags)

    def test_certain_burst_concentrates_on_strike_memory(self):
        tl = timeline(
            events_per_window=4.0, burst_probability=1.0, burst_factor=6.0
        )
        for window in range(5):
            assert tl.burst_in_window(window)
            events = tl.events_for_window(window)
            assert events, "a x6 burst over mean 4 cannot be empty"
            by_sequence = sorted(events, key=lambda e: e.sequence)
            strike = {e.memory for e in by_sequence if e.sequence % 2 == 0}
            assert len(strike) == 1  # every even draw hits one memory

    def test_burst_inflates_the_arrival_mean(self):
        windows = range(200)
        base = sum(
            len(timeline().events_for_window(w)) for w in windows
        )
        bursty = sum(
            len(
                timeline(
                    burst_probability=1.0, burst_factor=4.0
                ).events_for_window(w)
            )
            for w in windows
        )
        assert bursty > 2 * base


class TestValidation:
    def test_weights_must_cover_the_memories(self):
        with pytest.raises(ValueError):
            EventTimeline(
                cells_by_memory=CELLS,
                weights={"alpha": 1.0},
                window_ns=1000.0,
                events_per_window=1.0,
            )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            timeline(window_ns=0.0)
        with pytest.raises(ValueError):
            timeline(events_per_window=-1.0)
        with pytest.raises(ValueError):
            timeline(burst_probability=1.5)
        with pytest.raises(ValueError):
            timeline(burst_factor=0.5)
        with pytest.raises(ValueError):
            timeline().events_for_window(-1)
        with pytest.raises(ValueError):
            timeline().window_of(-1.0)
