"""Monitor determinism, resume, shutdown hygiene and bounded memory."""

from __future__ import annotations

import multiprocessing
import time
import tracemalloc

import pytest

from repro.engine.checkpoint import CheckpointError, RingCheckpointStore
from repro.streaming import StreamingMonitor, StreamingSpec, run_monitor

#: Small, fast stream shared by the determinism checks.
SPEC = StreamingSpec(
    memories=4,
    events_per_window=2.0,
    master_seed=23,
    burst_probability=0.1,
    backend="auto",
)


def window_payloads(spec: StreamingSpec, windows: int, **kwargs) -> list[str]:
    monitor = StreamingMonitor(spec, windows=windows, **kwargs)
    return [report.canonical_json() for report in monitor.windows()]


def _assert_no_orphaned_workers(before: set) -> None:
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leftover = {p for p in multiprocessing.active_children() if p not in before}
        if not leftover:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned pool workers: {leftover}")


class TestPartitionIndependence:
    """Results are a pure function of (spec, window): scheduling layout
    -- worker count, chunk size, epoch length -- must not leak in."""

    def test_worker_count_and_chunking_do_not_change_windows(self):
        inline = window_payloads(SPEC, 8, workers=1)
        pooled = window_payloads(SPEC, 8, workers=3, chunk_size=1)
        rechunked = window_payloads(
            SPEC, 8, workers=2, chunk_size=2, epoch_windows=3
        )
        assert inline == pooled == rechunked

    def test_aggregator_matches_across_layouts(self):
        one = run_monitor(SPEC, 8, workers=1)
        many = run_monitor(SPEC, 8, workers=3, chunk_size=1, epoch_windows=5)
        assert one.canonical_json() == many.canonical_json()

    def test_backends_agree_byte_for_byte(self):
        per_backend = [
            window_payloads(
                StreamingSpec(**{**SPEC.to_dict(), "backend": backend}),
                6,
                workers=1,
            )
            for backend in ("reference", "numpy", "batched")
        ]
        assert per_backend[0] == per_backend[1] == per_backend[2]

    def test_event_window_assignment_shared_by_all_layouts(self):
        # The boundary rule (edge -> later window) is decided in the
        # timeline, upstream of backend and pool: every generated event
        # agrees with window_of on every layout.
        timeline = SPEC.timeline()
        for window in range(12):
            for event in timeline.events_for_window(window):
                assert timeline.window_of(event.time_ns) == event.window == window


class TestEarlyStop:
    def test_break_terminates_pool_cleanly(self):
        before = set(multiprocessing.active_children())
        monitor = StreamingMonitor(SPEC, windows=None, workers=2, chunk_size=1)
        seen = []
        for report in monitor.windows():
            seen.append(report.index)
            if len(seen) == 2:
                break
        assert seen == [0, 1]
        _assert_no_orphaned_workers(before)

    def test_infinite_monitor_yields_absolute_indices_across_epochs(self):
        monitor = StreamingMonitor(SPEC, windows=None, workers=1, epoch_windows=3)
        stream = monitor.windows()
        indices = [next(stream).index for _ in range(7)]
        stream.close()
        assert indices == list(range(7))


class TestRingResume:
    def test_resume_reproduces_remaining_windows_byte_for_byte(self, tmp_path):
        store = tmp_path / "ring"
        straight = window_payloads(SPEC, 12, workers=1)
        whole = run_monitor(SPEC, 12, workers=1)

        part = []
        monitor = StreamingMonitor(
            SPEC, windows=12, workers=1, checkpoint=store
        )
        for report in monitor.windows():
            part.append(report.canonical_json())
            if len(part) == 5:
                break

        resumed = StreamingMonitor(
            SPEC, windows=12, workers=2, chunk_size=1,
            checkpoint=store, resume=True,
        )
        assert resumed.next_window == 5
        rest = [report.canonical_json() for report in resumed.windows()]
        assert part + rest == straight
        assert resumed.aggregator.canonical_json() == whole.canonical_json()

    def test_ring_retains_last_k_records(self, tmp_path):
        store = tmp_path / "ring"
        run_monitor(SPEC, 10, workers=1, checkpoint=store, retain=4)
        ring = RingCheckpointStore(store, SPEC, retain=4)
        windows = [record["window"] for record in ring.records()]
        assert windows == [6, 7, 8, 9]
        assert ring.latest()["window"] == 9

    def test_stale_spec_rejected(self, tmp_path):
        store = tmp_path / "ring"
        run_monitor(SPEC, 3, workers=1, checkpoint=store)
        other = StreamingSpec(**{**SPEC.to_dict(), "master_seed": 99})
        with pytest.raises(CheckpointError):
            StreamingMonitor(other, windows=6, checkpoint=store)

    def test_corrupt_slot_rejected(self, tmp_path):
        store = tmp_path / "ring"
        run_monitor(SPEC, 3, workers=1, checkpoint=store)
        ring = RingCheckpointStore(store, SPEC)
        slots = sorted(store.glob("slot_*.json"))
        slots[0].write_text(slots[0].read_text().replace('"events"', '"evxnts"'))
        with pytest.raises(CheckpointError):
            ring.records()

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            StreamingMonitor(SPEC, windows=4, resume=True)


class TestBoundedMemory:
    def test_fifty_windows_hold_flat_memory(self):
        # The ISSUE's CI guard in miniature: cumulative state is scalars,
        # Welford accumulators and two bounded rings, so traced heap
        # growth over the last 40 of 50 windows must stay flat.
        monitor = StreamingMonitor(SPEC, windows=50, workers=1)
        stream = monitor.windows()
        tracemalloc.start()
        try:
            baseline = None
            high_water = 0
            for count, _ in enumerate(stream, start=1):
                current, _ = tracemalloc.get_traced_memory()
                if count == 10:
                    baseline = current
                elif count > 10:
                    high_water = max(high_water, current - baseline)
        finally:
            tracemalloc.stop()
        assert monitor.aggregator.windows == 50
        assert high_water < 256 * 1024, (
            f"streaming state grew {high_water} bytes over 40 windows"
        )

    def test_digest_ring_stays_bounded_in_live_run(self):
        aggregator = run_monitor(SPEC, 12, workers=1, retain=4)
        assert len(aggregator.recent_digests) == 4


class TestStreamShape:
    def test_empty_stream_aggregates_cleanly(self):
        quiet = StreamingSpec(
            **{**SPEC.to_dict(), "events_per_window": 0.0, "burst_probability": 0.0}
        )
        aggregator = run_monitor(quiet, 6, workers=1)
        assert aggregator.windows == 6
        assert aggregator.empty_windows == 6
        assert aggregator.detection_rate is None
        assert aggregator.escape_rate is None
        assert aggregator.windows_per_sec >= 0.0

    def test_telemetry_attributes_window_spans(self):
        monitor = StreamingMonitor(SPEC, windows=6, workers=2, telemetry=True)
        for _ in monitor.windows():
            pass
        stream = monitor.telemetry_report.stream_stats()
        assert stream["windows"] == 6
        assert stream["events"] == monitor.aggregator.total_events
        payload = monitor.telemetry_report.to_json_dict()
        assert payload["stream"]["windows"] == 6

    def test_backend_pinning_mirrors_the_fleet_planner(self):
        # The default 8-memory stream is dense enough for the planner to
        # pin ``auto`` to the batched backend up front; the small test
        # spec stays on ``auto`` (resolved deterministically in-session).
        assert StreamingMonitor(StreamingSpec(), windows=1).spec.backend == "batched"
        assert StreamingMonitor(SPEC, windows=1).spec.backend == "auto"
