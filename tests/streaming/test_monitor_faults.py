"""Streaming monitor under injected faults: retries, quarantine, ring salvage."""

from __future__ import annotations

import pytest

import repro.streaming.monitor as monitor_module
from repro.engine.checkpoint import CheckpointError
from repro.engine.supervisor import ChunkRetryPolicy
from repro.streaming import StreamingMonitor, StreamingSpec
from repro.streaming.monitor import run_window_chunk
from repro.testing import ChaosChunkRunner, ChaosSpec

SPEC = StreamingSpec(
    memories=4,
    events_per_window=2.0,
    master_seed=23,
    burst_probability=0.1,
    backend="auto",
)

RETRY = ChunkRetryPolicy(
    max_attempts=3, backoff_base_s=0.01, backoff_max_s=0.05
)


def _payloads(spec: StreamingSpec, windows: int, **kwargs) -> list[str]:
    monitor = StreamingMonitor(spec, windows=windows, **kwargs)
    return [report.canonical_json() for report in monitor.windows()]


def _inject(monkeypatch, chaos: ChaosSpec) -> None:
    monkeypatch.setattr(
        monitor_module,
        "run_window_chunk",
        ChaosChunkRunner(chaos, inner=run_window_chunk),
    )


class TestMonitorRetries:
    def test_retried_windows_match_plain_stream(self, monkeypatch):
        plain = _payloads(SPEC, 4, workers=2, chunk_size=1)
        _inject(
            monkeypatch,
            ChaosSpec(seed=4, exception_rate=1.0, max_faults_per_chunk=1),
        )
        chaotic = _payloads(SPEC, 4, workers=2, chunk_size=1, retry=RETRY)
        assert chaotic == plain

    def test_worker_death_does_not_hang_the_stream(self, monkeypatch):
        plain = _payloads(SPEC, 4, workers=2, chunk_size=1)
        _inject(
            monkeypatch,
            ChaosSpec(seed=4, crash_rate=1.0, max_faults_per_chunk=1),
        )
        chaotic = _payloads(SPEC, 4, workers=2, chunk_size=1, retry=RETRY)
        assert chaotic == plain


class TestMonitorQuarantine:
    def test_poison_windows_are_skipped_and_recorded(self, monkeypatch):
        _inject(
            monkeypatch,
            ChaosSpec(seed=4, exception_rate=1.0, max_faults_per_chunk=99),
        )
        monitor = StreamingMonitor(
            SPEC,
            windows=4,
            workers=2,
            chunk_size=1,
            epoch_windows=2,
            retry=ChunkRetryPolicy(max_attempts=2, backoff_base_s=0.01),
            on_chunk_failure="quarantine",
        )
        # Every window is poison: the stream must still terminate (the
        # epoch cursor advances past trailing quarantined windows) and
        # account for all four windows in the failure records.
        assert list(monitor.windows()) == []
        lost = sorted(
            window
            for failure in monitor.failures
            for window in failure["windows"]
        )
        assert lost == [0, 1, 2, 3]
        assert all(
            failure["error_kinds"] == ["exception", "exception"]
            for failure in monitor.failures
        )

    def test_strict_mode_still_raises(self, monkeypatch):
        _inject(
            monkeypatch,
            ChaosSpec(seed=4, exception_rate=1.0, max_faults_per_chunk=99),
        )
        monitor = StreamingMonitor(
            SPEC,
            windows=4,
            workers=2,
            chunk_size=1,
            retry=ChunkRetryPolicy(max_attempts=1),
        )
        with pytest.raises(RuntimeError, match="injected failure"):
            list(monitor.windows())


class TestRingSalvage:
    def _run_checkpointed(self, tmp_path, windows: int, **kwargs) -> list[str]:
        return _payloads(
            SPEC, windows, checkpoint=tmp_path / "ring", **kwargs
        )

    def test_quarantine_resume_salvages_damaged_ring(self, tmp_path):
        full = self._run_checkpointed(tmp_path, 6)
        # Flip one byte in the newest record (window 5 lives in slot 5 of
        # the default 8-slot ring): resume must fall back to the window-4
        # survivor and recompute window 5 bit-exactly.
        newest = tmp_path / "ring" / "slot_00005.json"
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0x01
        newest.write_bytes(bytes(data))
        resumed = StreamingMonitor(
            SPEC,
            windows=6,
            checkpoint=tmp_path / "ring",
            resume=True,
            on_chunk_failure="quarantine",
        )
        assert resumed.next_window == 5
        tail = [report.canonical_json() for report in resumed.windows()]
        assert tail == full[5:]
        assert list((tmp_path / "ring").glob("*.quarantined"))

    def test_strict_resume_refuses_damaged_ring(self, tmp_path):
        self._run_checkpointed(tmp_path, 6)
        for slot in sorted((tmp_path / "ring").glob("slot_*.json")):
            data = bytearray(slot.read_bytes())
            data[len(data) // 2] ^= 0x01
            slot.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            StreamingMonitor(
                SPEC, windows=6, checkpoint=tmp_path / "ring", resume=True
            )
