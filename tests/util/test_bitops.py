"""Unit tests for repro.util.bitops."""

import pytest

from repro.util.bitops import (
    bit_of,
    bits_to_int,
    checkerboard,
    complement,
    int_to_bits,
    mask,
    parity,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0b1111
        assert mask(8) == 0xFF

    def test_wide_mask(self):
        assert mask(100) == (1 << 100) - 1

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitOf:
    def test_lsb(self):
        assert bit_of(0b101, 0) == 1

    def test_msb(self):
        assert bit_of(0b101, 2) == 1

    def test_clear_bit(self):
        assert bit_of(0b101, 1) == 0

    def test_beyond_width_is_zero(self):
        assert bit_of(0b101, 10) == 0

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            bit_of(1, -1)


class TestIntBitsRoundtrip:
    def test_lsb_first_expansion(self):
        assert int_to_bits(0b011, 3) == [1, 1, 0]

    def test_roundtrip(self):
        for value in (0, 1, 0b1010, 0xFF, 12345):
            width = max(1, value.bit_length())
            assert bits_to_int(int_to_bits(value, width)) == value

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestComplement:
    def test_basic(self):
        assert complement(0b1010, 4) == 0b0101

    def test_zero(self):
        assert complement(0, 4) == 0b1111

    def test_involution(self):
        assert complement(complement(0b1100, 4), 4) == 0b1100


class TestPopcountParity:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_parity(self):
        assert parity(0b1011) == 1
        assert parity(0b11) == 0


class TestReverseRotate:
    def test_reverse(self):
        assert reverse_bits(0b0001, 4) == 0b1000

    def test_reverse_palindrome(self):
        assert reverse_bits(0b1001, 4) == 0b1001

    def test_reverse_involution(self):
        assert reverse_bits(reverse_bits(0b0110_1, 5), 5) == 0b0110_1

    def test_rotate_left(self):
        assert rotate_left(0b1000, 4) == 0b0001

    def test_rotate_right(self):
        assert rotate_right(0b0001, 4) == 0b1000

    def test_rotate_full_cycle(self):
        assert rotate_left(0b1011, 4, 4) == 0b1011


class TestCheckerboard:
    def test_phase0(self):
        assert checkerboard(4, 0) == 0b0101

    def test_phase1(self):
        assert checkerboard(4, 1) == 0b1010

    def test_phases_are_complementary(self):
        assert checkerboard(6, 0) ^ checkerboard(6, 1) == mask(6)

    def test_adjacent_bits_differ(self):
        word = checkerboard(8, 0)
        for i in range(7):
            assert bit_of(word, i) != bit_of(word, i + 1)

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            checkerboard(4, 2)
