"""Tests for the mini VCD writer and the tracing monitor."""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.vcd import TracingMonitor, VcdWriter


class TestVcdWriter:
    def test_header(self):
        writer = VcdWriter()
        writer.add_signal("clk")
        text = writer.render()
        assert "$timescale 1ns $end" in text
        assert "$var wire 1 ! clk $end" in text
        assert "$enddefinitions $end" in text

    def test_changes_rendered_in_time_order(self):
        writer = VcdWriter()
        writer.add_signal("x")
        writer.change(5, "x", 1)
        writer.change(9, "x", 0)
        text = writer.render()
        assert text.index("#5") < text.index("#9")

    def test_redundant_changes_suppressed(self):
        writer = VcdWriter()
        writer.add_signal("x")
        writer.change(5, "x", 1)
        writer.change(6, "x", 1)
        assert "#6" not in writer.render()

    def test_duplicate_signal_rejected(self):
        writer = VcdWriter()
        writer.add_signal("x")
        with pytest.raises(ValueError):
            writer.add_signal("x")

    def test_unknown_signal_rejected(self):
        with pytest.raises(ValueError):
            VcdWriter().change(0, "ghost", 1)


class TestTracingMonitor:
    def test_full_session_produces_waveform(self):
        memory = SRAM(MemoryGeometry(8, 4, "vcd"))
        tracer = TracingMonitor()
        FastDiagnosisScheme(MemoryBank([memory]), monitor=tracer).diagnose()
        text = tracer.render()
        assert "scan_en" in text and "nwrtm" in text
        # scan_en toggles once per read; March CW-NW on 8 words has many.
        assert text.count("!") > 16  # identifier '!' belongs to scan_en

    def test_nwrtm_pulses_present(self):
        memory = SRAM(MemoryGeometry(8, 4, "vcd"))
        tracer = TracingMonitor()
        FastDiagnosisScheme(MemoryBank([memory]), monitor=tracer).diagnose()
        text = tracer.render()
        nwrtm_ident = '"'
        assert f"1{nwrtm_ident}" in text and f"0{nwrtm_ident}" in text
