"""Unit tests for repro.util.records and repro.util.units."""

from dataclasses import dataclass

import pytest

from repro.util.records import Record, format_table
from repro.util.units import (
    format_duration_ns,
    mhz_to_period_ns,
    ns_to_ms,
    period_ns_to_mhz,
)


@dataclass
class _Row(Record):
    name: str
    value: int


class TestRecord:
    def test_to_dict(self):
        assert _Row("x", 3).to_dict() == {"name": "x", "value": 3}

    def test_summary_mentions_fields(self):
        text = _Row("x", 3).summary()
        assert "name='x'" in text and "value=3" in text

    def test_non_dataclass_rejected(self):
        class Bad(Record):
            pass

        with pytest.raises(TypeError):
            Bad().to_dict()


class TestFormatTable:
    def test_mapping_rows(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 10, "b": 20}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "10" in lines[3]

    def test_sequence_rows_need_headers(self):
        with pytest.raises(ValueError):
            format_table([[1, 2]])

    def test_sequence_rows(self):
        text = format_table([[1, 2]], headers=["x", "y"])
        assert "x" in text and "1" in text

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_alignment(self):
        text = format_table(
            [{"col": "short"}, {"col": "a-much-longer-value"}]
        )
        lines = text.splitlines()
        assert len(lines[1]) >= len("a-much-longer-value")


class TestUnits:
    def test_ns_to_ms(self):
        assert ns_to_ms(2_000_000) == 2.0

    def test_mhz_roundtrip(self):
        assert mhz_to_period_ns(100.0) == 10.0
        assert period_ns_to_mhz(10.0) == 100.0

    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            mhz_to_period_ns(0)

    def test_format_seconds(self):
        assert format_duration_ns(1_433_408_000) == "1.433 s"

    def test_format_millis(self):
        assert format_duration_ns(9_984_400) == "9.984 ms"

    def test_format_micros(self):
        assert format_duration_ns(12_240) == "12.240 us"

    def test_format_nanos(self):
        assert format_duration_ns(512) == "512.000 ns"
