"""The shared half-up population-count rounding rule and its boundaries."""

from __future__ import annotations

from repro.faults.population import expected_fault_count
from repro.memory.geometry import MemoryGeometry
from repro.util.rounding import round_half_up


class TestRoundHalfUp:
    def test_plain_values_round_to_nearest(self):
        assert round_half_up(2.4) == 2
        assert round_half_up(2.6) == 3
        assert round_half_up(0.0) == 0
        assert round_half_up(7.0) == 7

    def test_exact_halves_always_round_up(self):
        # Built-in round() sends ties to even (2.5 -> 2, 3.5 -> 4); the
        # explicit convention is half *up*, odd and even targets alike.
        assert round(2.5) == 2 and round(3.5) == 4  # the divergence pinned
        assert round_half_up(0.5) == 1
        assert round_half_up(1.5) == 2
        assert round_half_up(2.5) == 3
        assert round_half_up(3.5) == 4

    def test_defect_population_count_uses_half_up(self):
        # 8 words x 4 bits = 32 cells; 32 * rate / 2 cells-per-fault hits
        # an exact .5 for rate = 5/32: banker's rounding would give 2.
        geometry = MemoryGeometry(8, 4, "half")
        assert expected_fault_count(geometry, 5.0 / 32.0, cells_per_fault=2) == 3

    def test_case_study_count_unchanged(self):
        # The paper's case-study population (exact product, no tie) is
        # unaffected by the rule change.
        assert expected_fault_count(MemoryGeometry(512, 100), 0.01) == 256
