"""Switch-level tests: Fig. 6's NWRC argument, executed."""

import pytest

from repro.electrical.cell6t import SixTransistorCell
from repro.electrical.devices import DeviceHealth
from repro.electrical.levels import Level
from repro.electrical.precharge import PrechargeCircuit
from repro.electrical.write_cycle import WriteKind, simulate_write


class TestLevels:
    def test_only_driven_levels_discharge(self):
        assert Level.GND.can_discharge_node
        assert not Level.FLOAT_GND.can_discharge_node

    def test_charging_levels(self):
        assert Level.VCC.can_charge_node
        assert not Level.FLOAT_GND.can_charge_node
        assert not Level.GND.can_charge_node

    def test_logic_values(self):
        assert Level.VCC.logic_value == 1
        assert Level.FLOAT_GND.logic_value == 0


class TestPrecharge:
    def test_normal_write_levels(self):
        pre = PrechargeCircuit()
        drive = pre.drive_for_write(1)
        assert drive.bl is Level.VCC and drive.blb is Level.GND

    def test_nwrc_levels_write1(self):
        """Fig. 6: BL at float GND, BLb at true GND."""
        pre = PrechargeCircuit()
        pre.set_nwrtm(True)
        drive = pre.drive_for_write(1)
        assert drive.bl is Level.FLOAT_GND and drive.blb is Level.GND

    def test_nwrc_levels_write0_mirror(self):
        pre = PrechargeCircuit()
        pre.set_nwrtm(True)
        drive = pre.drive_for_write(0)
        assert drive.bl is Level.GND and drive.blb is Level.FLOAT_GND

    def test_read_precharge(self):
        drive = PrechargeCircuit().drive_for_read()
        assert drive.bl is Level.FLOAT_VCC and drive.blb is Level.FLOAT_VCC


class TestGoodCell:
    def test_normal_write_flips(self):
        cell = SixTransistorCell()
        outcome = simulate_write(cell, 1)
        assert outcome.flipped and outcome.succeeded

    def test_nwrc_flips_good_cell(self):
        """A good cell succeeds at flipping under the NWRC (the paper's claim)."""
        cell = SixTransistorCell()
        outcome = simulate_write(cell, 1, WriteKind.NWRC)
        assert outcome.flipped and outcome.succeeded
        assert not outcome.retention_compromised

    def test_same_value_write_no_flip(self):
        cell = SixTransistorCell()
        outcome = simulate_write(cell, 0)
        assert not outcome.flipped and outcome.succeeded

    def test_retention_forever(self):
        cell = SixTransistorCell()
        simulate_write(cell, 1)
        cell.elapse(1e15)
        assert cell.read() == 1


class TestOpenPullupCell:
    """The DRF cell of Sec. 3.4: open PMOS at node A."""

    def test_normal_write_succeeds_but_compromised(self):
        cell = SixTransistorCell(pullup_a=DeviceHealth.OPEN)
        outcome = simulate_write(cell, 1)
        assert outcome.succeeded
        assert outcome.retention_compromised

    def test_value_decays_after_retention_time(self):
        cell = SixTransistorCell(pullup_a=DeviceHealth.OPEN, retention_ns=1_000.0)
        simulate_write(cell, 1)
        cell.elapse(2_000.0)
        assert cell.read() == 0

    def test_nwrc_fails_immediately(self):
        """Node A never exceeds node B: the faulty cell fails to flip."""
        cell = SixTransistorCell(pullup_a=DeviceHealth.OPEN)
        outcome = simulate_write(cell, 1, WriteKind.NWRC)
        assert not outcome.flipped
        assert cell.read() == 0

    def test_opposite_polarity_unaffected(self):
        cell = SixTransistorCell(pullup_a=DeviceHealth.OPEN)
        simulate_write(cell, 1)
        outcome = simulate_write(cell, 0, WriteKind.NWRC)
        assert outcome.succeeded  # node B's pull-up is healthy

    def test_open_pullup_b_mirrors(self):
        cell = SixTransistorCell(pullup_b=DeviceHealth.OPEN)
        simulate_write(cell, 1)
        outcome = simulate_write(cell, 0, WriteKind.NWRC)
        assert not outcome.flipped


class TestResistivePullupCell:
    """The weak cell: passes everything except the NWRC."""

    def test_normal_write_fine(self):
        cell = SixTransistorCell(pullup_a=DeviceHealth.RESISTIVE)
        assert simulate_write(cell, 1).succeeded

    def test_retention_fine(self):
        cell = SixTransistorCell(pullup_a=DeviceHealth.RESISTIVE)
        simulate_write(cell, 1)
        cell.elapse(1e15)
        assert cell.read() == 1

    def test_nwrc_fails(self):
        cell = SixTransistorCell(pullup_a=DeviceHealth.RESISTIVE)
        outcome = simulate_write(cell, 1, WriteKind.NWRC)
        assert not outcome.flipped


class TestCellValidation:
    def test_nodes_complementary(self):
        cell = SixTransistorCell(initial_value=1)
        assert cell.nodes.is_valid
        assert cell.nodes.a == 1 and cell.nodes.b == 0

    def test_bad_value_rejected(self):
        cell = SixTransistorCell()
        with pytest.raises(ValueError):
            simulate_write(cell, 2)

    def test_pullup_for_node(self):
        cell = SixTransistorCell(pullup_b=DeviceHealth.OPEN)
        assert cell.pullup_for_node("a") is DeviceHealth.OK
        assert cell.pullup_for_node("b") is DeviceHealth.OPEN
