"""Cell-column tests + cross-validation of electrical vs functional models.

The behavioural fault models (DataRetentionFault, WeakCellDefect) must
agree with the switch-level cell for every (defect, operation) pair --
that agreement is what justifies using the cheap functional models in the
full-scheme experiments.
"""

import pytest

from repro.electrical.column import CellColumn
from repro.electrical.devices import DeviceHealth
from repro.electrical.cell6t import SixTransistorCell
from repro.electrical.write_cycle import WriteKind, simulate_write
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.weak_cell import WeakCellDefect
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM


class TestCellColumn:
    def test_build_and_write(self):
        column = CellColumn.build(4)
        column.write_all(1)
        assert column.read_all() == [1, 1, 1, 1]

    def test_nwrc_flags_defective_rows(self):
        column = CellColumn.build(
            8, open_pullup_rows={2: "a"}, resistive_pullup_rows={5: "a"}
        )
        column.write_all(0)
        column.write_all(1, WriteKind.NWRC)
        assert column.rows_not_storing(1) == [2, 5]

    def test_normal_write_hides_both_defects(self):
        column = CellColumn.build(
            8, open_pullup_rows={2: "a"}, resistive_pullup_rows={5: "a"}
        )
        column.write_all(0)
        column.write_all(1)
        assert column.rows_not_storing(1) == []

    def test_retention_pause_exposes_only_open(self):
        column = CellColumn.build(
            8,
            open_pullup_rows={2: "a"},
            resistive_pullup_rows={5: "a"},
            retention_ns=1_000.0,
        )
        column.write_all(0)
        column.write_all(1)
        column.elapse(2_000.0)
        assert column.rows_not_storing(1) == [2]

    def test_empty_column_rejected(self):
        with pytest.raises(ValueError):
            CellColumn([])


class TestCrossValidation:
    """Functional fault models vs the switch-level cell, same scenario."""

    @pytest.mark.parametrize("fragile", [0, 1])
    def test_drf_nwrc_agreement(self, fragile):
        # Switch level: open pull-up on the node holding `fragile`.
        cell = SixTransistorCell(
            pullup_a=DeviceHealth.OPEN if fragile == 1 else DeviceHealth.OK,
            pullup_b=DeviceHealth.OPEN if fragile == 0 else DeviceHealth.OK,
            initial_value=1 - fragile,
        )
        electrical = simulate_write(cell, fragile, WriteKind.NWRC).succeeded

        # Functional level: same defect, same NWRC.
        memory = SRAM(MemoryGeometry(2, 1))
        DataRetentionFault(CellRef(0, 0), fragile_value=fragile).attach(memory)
        memory.force_stored_bit(0, 0, 1 - fragile)
        memory.nwrc_write(0, fragile)
        functional = memory.read(0) == fragile

        assert electrical == functional == False  # noqa: E712 - explicit triple

    @pytest.mark.parametrize("fragile", [0, 1])
    def test_drf_normal_write_and_decay_agreement(self, fragile):
        retention = 1_000.0
        cell = SixTransistorCell(
            pullup_a=DeviceHealth.OPEN if fragile == 1 else DeviceHealth.OK,
            pullup_b=DeviceHealth.OPEN if fragile == 0 else DeviceHealth.OK,
            initial_value=1 - fragile,
            retention_ns=retention,
        )
        simulate_write(cell, fragile)
        immediately = cell.read()
        cell.elapse(2 * retention)
        after_pause = cell.read()

        memory = SRAM(MemoryGeometry(2, 1))
        DataRetentionFault(
            CellRef(0, 0), fragile_value=fragile, retention_ns=retention
        ).attach(memory)
        memory.force_stored_bit(0, 0, 1 - fragile)
        memory.write(0, fragile)
        functional_immediately = memory.read(0)
        memory.pause(2 * retention)
        functional_after = memory.read(0)

        assert immediately == functional_immediately == fragile
        assert after_pause == functional_after == 1 - fragile

    @pytest.mark.parametrize("weak", [0, 1])
    def test_weak_cell_agreement(self, weak):
        cell = SixTransistorCell(
            pullup_a=DeviceHealth.RESISTIVE if weak == 1 else DeviceHealth.OK,
            pullup_b=DeviceHealth.RESISTIVE if weak == 0 else DeviceHealth.OK,
            initial_value=1 - weak,
        )
        electrical_nwrc = simulate_write(cell, weak, WriteKind.NWRC).succeeded

        memory = SRAM(MemoryGeometry(2, 1))
        WeakCellDefect(CellRef(0, 0), weak_value=weak).attach(memory)
        memory.force_stored_bit(0, 0, 1 - weak)
        memory.nwrc_write(0, weak)
        functional_nwrc = memory.read(0) == weak

        assert electrical_nwrc == functional_nwrc == False  # noqa: E712

        # Normal write agreement (both succeed, both retain).
        cell2 = SixTransistorCell(
            pullup_a=DeviceHealth.RESISTIVE if weak == 1 else DeviceHealth.OK,
            pullup_b=DeviceHealth.RESISTIVE if weak == 0 else DeviceHealth.OK,
            initial_value=1 - weak,
        )
        assert simulate_write(cell2, weak).succeeded
        cell2.elapse(1e15)
        assert cell2.read() == weak
