"""Integration tests asserting the paper's headline claims end to end (E5).

These run both complete schemes on the [16] case-study configuration with
a seeded 1 %-defect population and check the *measured* quantities against
the paper's numbers -- not just the closed forms.
"""

import pytest

from repro.baseline.scheme import HuangJoneScheme
from repro.core.scheme import FastDiagnosisScheme
from repro.core.timing import proposed_diagnosis_time_ns
from repro.faults.injector import FaultInjector
from repro.memory.bank import MemoryBank
from repro.memory.sram import SRAM
from repro.soc.case_study import (
    CASE_STUDY_ITERATIONS,
    CASE_STUDY_PERIOD_NS,
    case_study_geometry,
    case_study_population,
)


@pytest.fixture(scope="module")
def case_study_run():
    """One full baseline-vs-proposed run on the case-study memory."""
    geometry = case_study_geometry("esram")
    population = case_study_population(rng=42)

    baseline_memory = SRAM(geometry, period_ns=CASE_STUDY_PERIOD_NS)
    baseline_injector = FaultInjector()
    baseline_injector.inject(baseline_memory, population.faults)
    baseline = HuangJoneScheme(
        MemoryBank([baseline_memory]), period_ns=CASE_STUDY_PERIOD_NS
    )
    baseline_report = baseline.diagnose(baseline_injector, include_drf=True)

    proposed_memory = SRAM(geometry, period_ns=CASE_STUDY_PERIOD_NS)
    proposed_injector = FaultInjector()
    fresh_population = case_study_population(rng=42)
    proposed_injector.inject(proposed_memory, fresh_population.faults)
    proposed = FastDiagnosisScheme(
        MemoryBank([proposed_memory]), period_ns=CASE_STUDY_PERIOD_NS
    )
    proposed_report = proposed.diagnose()

    return {
        "population": population,
        "baseline_report": baseline_report,
        "proposed_report": proposed_report,
        "proposed_injector": proposed_injector,
    }


class TestPopulationArithmetic:
    def test_256_faults(self, case_study_run):
        assert case_study_run["population"].size == 256

    def test_emergent_k_matches_paper(self, case_study_run):
        """k emerges from the iterate-repair loop, ~= the paper's 96.

        The paper uses exactly 75% x 256 / 2 = 96; a sampled population's
        class mix fluctuates around 75%, so k lands within a few
        iterations of 96.
        """
        iterations = case_study_run["baseline_report"].iterations
        assert abs(iterations - CASE_STUDY_ITERATIONS) <= 5


class TestMeasuredReduction:
    def test_measured_r_without_drf(self, case_study_run):
        """Paper: R >= 84.  Measured from the two simulated sessions."""
        baseline_ns = (
            case_study_run["baseline_report"].time_ns
            - case_study_run["baseline_report"].pause_ns
        )
        # Subtract the DRF sweeps to isolate the Eq. (1) part.
        k = case_study_run["baseline_report"].iterations
        drf_sweep_ns = 8 * k * 512 * 100 * CASE_STUDY_PERIOD_NS
        baseline_no_drf = baseline_ns - drf_sweep_ns
        proposed_ns = case_study_run["proposed_report"].time_ns
        assert baseline_no_drf / proposed_ns >= 84.0

    def test_measured_r_with_drf(self, case_study_run):
        """Paper: R >= 145 with DRFs; measured lands within 5 %."""
        ratio = (
            case_study_run["baseline_report"].time_ns
            / case_study_run["proposed_report"].time_ns
        )
        assert ratio == pytest.approx(145.0, rel=0.05)

    def test_proposed_time_matches_eq2(self, case_study_run):
        assert case_study_run["proposed_report"].time_ns == \
            proposed_diagnosis_time_ns(512, 100, CASE_STUDY_PERIOD_NS)

    def test_proposed_needs_no_pauses(self, case_study_run):
        assert case_study_run["proposed_report"].pause_ns == 0.0
        assert case_study_run["baseline_report"].pause_ns == 200e6


class TestCoverageOutcome:
    def test_proposed_localizes_every_fault(self, case_study_run):
        """One March CW-NW pass localizes the entire population."""
        rate = case_study_run["proposed_report"].localization_rate(
            case_study_run["proposed_injector"]
        )
        assert rate == 1.0

    def test_baseline_misses_exactly_the_weak_cells(self, case_study_run):
        """With DRF mode on, the baseline still cannot see weak cells;
        the sampled population contains none, so the miss list holds only
        classes outside M1+DRF reach."""
        report = case_study_run["baseline_report"]
        population = case_study_run["population"]
        localized = len(report.localized)
        assert localized == population.size - len(report.missed)

    def test_baseline_without_drf_misses_retention_faults(self):
        geometry = case_study_geometry("esram2")
        population = case_study_population(rng=7)
        memory = SRAM(geometry)
        injector = FaultInjector()
        injector.inject(memory, population.faults)
        report = HuangJoneScheme(MemoryBank([memory])).diagnose(injector)
        assert len(report.missed) == population.retention_faults
