"""End-to-end SoC diagnosis flows: diagnose -> repair -> verify."""

import pytest

from repro.core.repair import RepairController
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.population import sample_population
from repro.faults.retention_fault import DataRetentionFault
from repro.faults.stuck_at import StuckAtFault
from repro.march.library import march_cw, march_cw_nw
from repro.memory.geometry import CellRef
from repro.soc.chip import SoCConfig


@pytest.fixture
def soc():
    return SoCConfig(
        name="test-soc",
        geometries=[
            SoCConfig.buffer_cluster().geometries[0],
            SoCConfig.buffer_cluster().geometries[1],
            SoCConfig.buffer_cluster().geometries[2],
        ],
    )


class TestDiagnoseRepairVerify:
    def test_full_flow_on_buffer_cluster(self, soc):
        bank = soc.build_bank()
        injector = FaultInjector()
        for index, memory in enumerate(bank):
            population = sample_population(memory.geometry, 0.002, rng=100 + index)
            injector.inject(memory, population.faults)
        assert injector.total > 0

        scheme = FastDiagnosisScheme(bank)
        report = scheme.diagnose()
        assert not report.passed
        assert report.localization_rate(injector) == 1.0

        repair = RepairController(bank, spares_per_memory=64)
        result = repair.apply(report)
        assert result.fully_repaired

        verification = scheme.diagnose()
        assert verification.passed

    def test_unrepairable_when_spares_exhausted(self, soc):
        bank = soc.build_bank()
        injector = FaultInjector()
        target = bank[0]
        injector.inject(
            target, [StuckAtFault(CellRef(w, 0), 1) for w in range(10)]
        )
        scheme = FastDiagnosisScheme(bank)
        repair = RepairController(bank, spares_per_memory=3)
        result = repair.apply(scheme.diagnose())
        assert not result.fully_repaired
        assert not scheme.diagnose().passed


class TestAlgorithmChoiceMatters:
    def test_march_cw_misses_drfs_in_full_scheme(self, soc):
        """Running plain March CW (no NWRTM) through the same architecture
        leaves DRFs undetected -- the ablation behind the paper's Sec. 3.4."""
        bank = soc.build_bank()
        injector = FaultInjector()
        injector.inject(bank[0], DataRetentionFault(CellRef(3, 3), 1))
        plain = FastDiagnosisScheme(bank, algorithm_factory=march_cw)
        assert plain.diagnose().passed  # DRF escapes

        bank2 = soc.build_bank()
        injector2 = FaultInjector()
        injector2.inject(bank2[0], DataRetentionFault(CellRef(3, 3), 1))
        nwrtm = FastDiagnosisScheme(bank2, algorithm_factory=march_cw_nw)
        assert not nwrtm.diagnose().passed  # NWRTM catches it


class TestIdleModeFallback:
    def test_memories_without_idle_mode_diagnose_identically(self, soc):
        bank_idle = soc.build_bank(has_idle_mode=True)
        bank_read = soc.build_bank(has_idle_mode=False)
        for bank in (bank_idle, bank_read):
            injector = FaultInjector()
            injector.inject(bank[1], StuckAtFault(CellRef(5, 5), 1))
        report_idle = FastDiagnosisScheme(bank_idle).diagnose()
        report_read = FastDiagnosisScheme(bank_read).diagnose()
        assert report_idle.cycles == report_read.cycles
        assert report_idle.detected_cells("hdr_buf") == \
            report_read.detected_cells("hdr_buf")


class TestSessionRepeatability:
    def test_two_sessions_same_results(self, soc):
        bank = soc.build_bank()
        injector = FaultInjector()
        injector.inject(bank[2], StuckAtFault(CellRef(2, 2), 0))
        scheme = FastDiagnosisScheme(bank)
        first = scheme.diagnose()
        second = scheme.diagnose()
        assert first.detected_cells("tag_ram") == second.detected_cells("tag_ram")
        assert first.cycles == second.cycles
