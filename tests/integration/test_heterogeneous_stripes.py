"""A subtle correctness property of the MSB-first design (Sec. 3.2).

The shared controller generates stripe backgrounds for the *widest*
memory; a narrower memory receives the truncated low bits.  Because the
log2-c stripes are column-indexed, any low-bit truncation of the family
still distinguishes every pair of the narrow memory's columns -- so
background-sensitive faults (column bridges, intra-word read-disturb
coupling) remain detectable in narrow memories of a heterogeneous bank.

This is the property that makes the paper's "one background generator
sized for the widest memory" design sound, and it is asserted here both
combinatorially and through full diagnosis sessions.
"""

import pytest

from repro.core.scheme import FastDiagnosisScheme
from repro.faults.address_fault import ColumnBridgeFault
from repro.faults.coupling import StateCouplingFault
from repro.faults.injector import FaultInjector
from repro.march.backgrounds import log2_backgrounds
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.util.bitops import mask


class TestTruncatedStripeFamilies:
    @pytest.mark.parametrize("wide,narrow", [(8, 5), (16, 7), (100, 33)])
    def test_truncated_family_still_distinguishes_all_pairs(self, wide, narrow):
        truncated = [bg & mask(narrow) for bg in log2_backgrounds(wide)]
        for i in range(narrow):
            for j in range(i + 1, narrow):
                assert any(
                    ((bg >> i) & 1) != ((bg >> j) & 1) for bg in truncated
                ), f"columns {i},{j} of a {narrow}-bit memory never differ"


class TestNarrowMemoryBgSensitiveFaults:
    def _bank(self):
        return MemoryBank(
            [
                SRAM(MemoryGeometry(16, 8, "wide")),
                SRAM(MemoryGeometry(8, 5, "narrow")),
            ]
        )

    def test_column_bridge_in_narrow_memory_detected(self):
        bank = self._bank()
        injector = FaultInjector()
        injector.inject(bank.by_name("narrow"), ColumnBridgeFault(1, 2, 8))
        report = FastDiagnosisScheme(bank).diagnose()
        assert report.failures["narrow"]
        assert not report.failures["wide"]

    def test_intra_word_read_disturb_in_narrow_memory_detected(self):
        bank = self._bank()
        injector = FaultInjector()
        injector.inject(
            bank.by_name("narrow"),
            StateCouplingFault(
                CellRef(3, 2), CellRef(3, 1), 1, 1, affects_write=False
            ),
        )
        report = FastDiagnosisScheme(bank).diagnose()
        assert CellRef(3, 1) in report.detected_cells("narrow")

    def test_all_narrow_columns_pairwise_exercised(self):
        """End-to-end: bridges between every adjacent narrow-column pair."""
        for bit in range(4):
            bank = self._bank()
            injector = FaultInjector()
            injector.inject(
                bank.by_name("narrow"), ColumnBridgeFault(bit, bit + 1, 8)
            )
            report = FastDiagnosisScheme(bank).diagnose()
            assert report.failures["narrow"], f"bridge {bit}-{bit + 1} escaped"
