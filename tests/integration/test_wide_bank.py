"""Stress test: a wide distributed bank under one controller."""

import pytest

from repro.core.campaign import DiagnosisCampaign
from repro.core.scheme import FastDiagnosisScheme
from repro.faults.injector import FaultInjector
from repro.faults.stuck_at import StuckAtFault
from repro.memory.bank import MemoryBank
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.soc.chip import SoCConfig


def _wide_bank(count=12):
    shapes = [(32, 16), (16, 9), (24, 12), (8, 4)]
    memories = []
    for index in range(count):
        words, bits = shapes[index % len(shapes)]
        memories.append(SRAM(MemoryGeometry(words, bits, f"mem{index:02d}")))
    return MemoryBank(memories)


class TestTwelveMemoryBank:
    def test_fault_free_bank_passes(self):
        report = FastDiagnosisScheme(_wide_bank()).diagnose()
        assert report.passed

    def test_fault_in_every_memory_localized(self):
        bank = _wide_bank()
        injector = FaultInjector()
        expected = {}
        for index, memory in enumerate(bank):
            cell = CellRef(index % memory.words, index % memory.bits)
            injector.inject(memory, StuckAtFault(cell, 1))
            expected[memory.name] = cell
        report = FastDiagnosisScheme(bank).diagnose()
        for name, cell in expected.items():
            assert report.detected_cells(name) == {cell}, name

    def test_schedule_still_set_by_largest(self):
        lone = FastDiagnosisScheme(
            MemoryBank([SRAM(MemoryGeometry(32, 16, "big"))])
        ).diagnose()
        many = FastDiagnosisScheme(_wide_bank()).diagnose()
        assert many.cycles == lone.cycles

    def test_campaign_over_wide_soc(self):
        soc = SoCConfig(
            name="wide-soc",
            geometries=[
                MemoryGeometry(32, 16, f"g{i}") if i % 2 == 0
                else MemoryGeometry(16, 8, f"g{i}")
                for i in range(8)
            ],
        )
        report = DiagnosisCampaign(soc, defect_rate=0.01, seed=31).run(
            include_baseline=False
        )
        assert report.localization_rate == 1.0
        assert report.verification_passed
