"""Tracer, counters and the process-global handle."""

from __future__ import annotations

import time

from repro.telemetry.core import (
    NULL_TRACER,
    Counters,
    NullTracer,
    Tracer,
    activate,
    deactivate,
    set_tracer,
    tracer,
)


class TestCounters:
    def test_add_creates_at_zero(self):
        counters = Counters()
        counters.add("a.b", 3)
        counters.add("a.b", 2)
        counters.add("a.c")
        assert counters.get("a.b") == 5
        assert counters.get("a.c") == 1
        assert counters.get("missing") == 0
        assert counters.get("missing", 42) == 42

    def test_merge_from_counters_and_dict(self):
        left = Counters()
        left.add("x", 1)
        right = Counters()
        right.add("x", 2)
        right.add("y", 5)
        left.merge(right)
        left.merge({"x": 10, "z": 1})
        assert left.to_dict() == {"x": 13, "y": 5, "z": 1}

    def test_to_dict_is_name_sorted(self):
        counters = Counters()
        counters.add("b")
        counters.add("a")
        counters.add("c")
        assert list(counters.to_dict()) == ["a", "b", "c"]


class TestTracer:
    def test_span_records_name_category_args(self):
        tr = Tracer()
        with tr.span("work", "test", item=7):
            pass
        assert len(tr.spans) == 1
        name, category, start_ns, duration_ns, depth, args = tr.spans[0]
        assert name == "work"
        assert category == "test"
        assert duration_ns >= 0
        assert depth == 0
        assert args == {"item": 7}

    def test_nested_spans_record_depth(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        # Completion order: inner closes first.
        assert [(s[0], s[4]) for s in tr.spans] == [("inner", 1), ("outer", 0)]
        outer = tr.spans[1]
        inner = tr.spans[0]
        # The inner span lies within the outer span on the timeline.
        assert outer[2] <= inner[2]
        assert inner[2] + inner[3] <= outer[2] + outer[3]

    def test_span_stats_aggregate(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("repeated"):
                pass
        count, total_ns, min_ns, max_ns = tr.span_stats["repeated"]
        assert count == 3
        assert min_ns <= max_ns
        assert total_ns >= max_ns

    def test_max_spans_degrades_to_stats_only(self):
        tr = Tracer(max_spans=2)
        for _ in range(5):
            with tr.span("s"):
                pass
        assert len(tr.spans) == 2
        assert tr.dropped_spans == 3
        assert tr.span_stats["s"][0] == 5  # aggregates stay exact

    def test_span_survives_exceptions(self):
        tr = Tracer()
        try:
            with tr.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tr.spans) == 1
        assert tr._stack == []

    def test_counter_site(self):
        tr = Tracer()
        tr.counters.add("lane.replay.ns", 100)
        assert tr.counters.get("lane.replay.ns") == 100

    def test_snapshot_is_json_friendly(self):
        import json

        tr = Tracer()
        with tr.span("a", "cat", k=1):
            tr.counters.add("c", 2)
        snapshot = tr.snapshot()
        assert json.loads(json.dumps(snapshot)) is not None
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["span_stats"]["a"][0] == 1
        assert snapshot["spans"][0][0] == "a"
        assert snapshot["dropped_spans"] == 0
        assert snapshot["pid"] == tr.pid

    def test_uses_monotonic_clock(self):
        tr = Tracer()
        before = time.perf_counter_ns()
        with tr.span("clocked"):
            pass
        after = time.perf_counter_ns()
        start_ns = tr.spans[0][2]
        assert before <= start_ns <= after


class TestNullTracer:
    def test_disabled_and_inert(self):
        null = NullTracer()
        assert null.enabled is False
        with null.span("anything", "cat", arg=1):
            pass
        snapshot = null.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == []

    def test_span_is_shared_instance(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")

    def test_counters_are_real(self):
        # Unguarded adds must not crash (the contract is to guard, but a
        # miss degrades to a harmless accumulation, not an AttributeError).
        null = NullTracer()
        null.counters.add("oops", 1)
        assert null.counters.get("oops") == 1


class TestGlobalHandle:
    def test_default_is_the_null_tracer(self):
        assert tracer() is NULL_TRACER
        assert not tracer().enabled

    def test_activate_installs_fresh_tracer(self):
        first = activate()
        try:
            assert tracer() is first
            assert first.enabled
        finally:
            deactivate()
        second = activate()
        try:
            assert second is not first
        finally:
            deactivate()

    def test_deactivate_restores_null(self):
        activate()
        previous = deactivate()
        assert isinstance(previous, Tracer)
        assert tracer() is NULL_TRACER

    def test_set_tracer_returns_previous(self):
        mine = Tracer()
        previous = set_tracer(mine)
        try:
            assert previous is NULL_TRACER
            assert tracer() is mine
        finally:
            assert set_tracer(NULL_TRACER) is mine
