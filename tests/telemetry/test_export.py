"""TelemetryReport merging, derived views and the exporters."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.core import Tracer
from repro.telemetry.export import (
    chrome_trace_events,
    write_chrome_trace,
    write_metrics_json,
)
from repro.telemetry.report import TelemetryReport


def traced_report() -> TelemetryReport:
    """A report with nested spans from two 'processes'."""
    tr = Tracer()
    with tr.span("fleet.chunk", "fleet", chunk=0):
        with tr.span("march.element", "march", step=0):
            pass
        with tr.span("march.element", "march", step=1):
            pass
    tr.counters.add("lane.replay.ns", 3_000_000)
    tr.counters.add("lane.replay.words", 30)
    tr.counters.add("lane.table.ns", 1_000_000)
    tr.counters.add("lane.table.words", 20)
    tr.counters.add("lane.clean.ns", 6_000_000)
    tr.counters.add("lane.clean.words", 50)
    report = TelemetryReport()
    report.merge_tracer(tr)
    other = tr.snapshot()
    other["pid"] = tr.pid + 1  # pretend a second worker shipped the same
    report.merge_snapshot(other)
    return report


class TestMerging:
    def test_counters_and_stats_merge(self):
        report = traced_report()
        assert report.counters.get("lane.replay.ns") == 6_000_000
        assert report.span_stats["march.element"][0] == 4
        assert len(report.processes) == 2
        assert len(report.spans) == 6

    def test_merge_is_order_insensitive(self):
        tr_a, tr_b = Tracer(), Tracer()
        with tr_a.span("a"):
            pass
        tr_a.counters.add("x", 1)
        with tr_b.span("b"):
            pass
        tr_b.counters.add("x", 2)
        forward, backward = TelemetryReport(), TelemetryReport()
        forward.merge_tracer(tr_a)
        forward.merge_tracer(tr_b)
        backward.merge_tracer(tr_b)
        backward.merge_tracer(tr_a)
        fw = forward.to_json_dict()
        bw = backward.to_json_dict()
        # Raw span order differs with merge order; everything derived
        # (counters, stats, attribution) must not.
        assert fw == bw

    def test_dropped_spans_accumulate(self):
        report = TelemetryReport()
        report.merge_snapshot(
            {"pid": 1, "counters": {}, "span_stats": {}, "spans": [], "dropped_spans": 7}
        )
        assert report.dropped_spans == 7


class TestLaneAttribution:
    def test_shares_sum_to_one(self):
        attribution = traced_report().lane_attribution()
        lanes = attribution["lanes"]
        assert attribution["march_time_s"] == pytest.approx(0.02)
        assert sum(l["time_share"] for l in lanes.values()) == pytest.approx(1.0)
        assert sum(l["word_share"] for l in lanes.values()) == pytest.approx(1.0)
        assert lanes["replay"]["time_share"] == pytest.approx(0.3)
        assert lanes["clean"]["words"] == 100

    def test_empty_report_has_none_shares(self):
        attribution = TelemetryReport().lane_attribution()
        assert attribution["march_time_s"] == 0
        for lane in attribution["lanes"].values():
            assert lane["time_share"] is None
            assert lane["word_share"] is None


class TestFleetStats:
    def test_utilization_clamped(self):
        report = TelemetryReport()
        report.counters.merge(
            {
                "fleet.workers": 2,
                "fleet.elapsed.ns": 1_000_000_000,
                "fleet.worker_busy.ns": 5_000_000_000,
                "fleet.chunks": 4,
            }
        )
        stats = report.fleet_stats()
        assert stats["worker_utilization"] == 1.0
        assert stats["workers"] == 2
        assert stats["chunks"] == 4

    def test_no_fleet_counters_mean_no_utilization(self):
        assert TelemetryReport().fleet_stats()["worker_utilization"] is None


class TestChromeTrace:
    def test_empty_report_renders_no_events(self):
        assert chrome_trace_events(TelemetryReport()) == []

    def test_events_are_matched_and_sorted(self):
        events = chrome_trace_events(traced_report())
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 6
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert min(timestamps) == 0.0  # re-zeroed to the earliest span

    def test_events_nest_strictly_per_track(self):
        # Replaying each track's events against a stack must never pop a
        # mismatched name: that is exactly what trace viewers require.
        events = chrome_trace_events(traced_report())
        stacks: dict[tuple, list[str]] = {}
        for event in events:
            stack = stacks.setdefault((event["pid"], event["tid"]), [])
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack, f"E without matching B: {event}"
                assert stack.pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_args_forwarded_on_begin_events(self):
        events = chrome_trace_events(traced_report())
        chunk_begins = [
            e for e in events if e["ph"] == "B" and e["name"] == "fleet.chunk"
        ]
        assert chunk_begins and chunk_begins[0]["args"] == {"chunk": 0}

    def test_write_chrome_trace_document(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_report(), path)
        document = json.loads(path.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert len(document["traceEvents"]) == 12
        assert document["otherData"]["dropped_spans"] == 0
        assert len(document["otherData"]["processes"]) == 2


class TestMetricsJson:
    def test_document_shape(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(traced_report(), path)
        document = json.loads(path.read_text())
        assert set(document) == {
            "processes",
            "counters",
            "span_stats",
            "lane_attribution",
            "fleet",
            "dropped_spans",
        }
        assert document["counters"]["lane.replay.ns"] == 6_000_000
        assert document["span_stats"]["march.element"]["count"] == 4
        lanes = document["lane_attribution"]["lanes"]
        assert set(lanes) == {"replay", "table", "clean"}
        for lane in lanes.values():
            assert set(lane) == {"time_s", "words", "time_share", "word_share"}

    def test_summary_lines_render(self):
        report = traced_report()
        report.counters.merge(
            {"fleet.workers": 2, "fleet.elapsed.ns": 10**9, "fleet.chunks": 4,
             "plan_cache.hits": 3, "plan_cache.misses": 1}
        )
        text = "\n".join(report.summary_lines())
        assert "replay lane" in text
        assert "table lane" in text
        assert "clean lane" in text
        assert "fleet" in text
        assert "plan cache" in text
