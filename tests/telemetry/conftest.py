"""Telemetry test hygiene: never leak an active tracer between tests."""

from __future__ import annotations

import pytest

from repro.telemetry.core import NULL_TRACER, set_tracer


@pytest.fixture(autouse=True)
def restore_null_tracer():
    yield
    set_tracer(NULL_TRACER)
