"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["diagnose"])
        assert args.words == 512 and args.bits == 100
        assert args.scheme == "proposed"


class TestCaseStudy:
    def test_prints_headline_numbers(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "84.15" in out
        assert "T[7,8]" in out


class TestDiagnose:
    def test_proposed_small(self, capsys):
        assert main(
            ["diagnose", "--words", "32", "--bits", "8",
             "--defect-rate", "0.02", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "localization rate : 1.000" in out
        assert "March CW-NW" in out

    def test_baseline_small(self, capsys):
        assert main(
            ["diagnose", "--words", "32", "--bits", "8",
             "--defect-rate", "0.02", "--scheme", "baseline", "--include-drf"]
        ) == 0
        out = capsys.readouterr().out
        assert "iterations (k)" in out
        assert "missed faults     : 0" in out

    def test_baseline_without_drf_misses(self, capsys):
        assert main(
            ["diagnose", "--words", "64", "--bits", "16",
             "--defect-rate", "0.02", "--scheme", "baseline", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        missed = int(out.split("missed faults     : ")[1].split()[0])
        assert missed > 0  # the DRFs


class TestCoverage:
    def test_matrix_renders(self, capsys):
        assert main(["coverage", "--words", "8", "--bits", "4"]) == 0
        out = capsys.readouterr().out
        assert "March C-" in out and "March CW-NW" in out
        assert "DRF1" in out


class TestCampaign:
    def test_buffer_cluster_campaign(self, capsys):
        assert main(
            ["campaign", "--defect-rate", "0.003", "--seed", "7", "--no-baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "localization 100.0%" in out
        assert "verify   : PASS" in out

    def test_campaign_with_baseline(self, capsys):
        assert main(
            ["campaign", "--defect-rate", "0.003", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "reduction:" in out


class TestSweepAndArea:
    def test_sweep_analytic_only(self, capsys):
        assert main(["sweep", "--analytic-only", "--rates", "0.001,0.01"]) == 0
        out = capsys.readouterr().out
        assert "defect rate" in out and "R (DRF)" in out

    def test_sweep_analytic_only_respects_matrix(self, capsys):
        assert main(
            ["sweep", "--analytic-only", "--matrix", "geometry",
             "--shapes", "64x16", "--defect-rate", "0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "64 x 16" in out and "R (DRF)" in out
        assert main(
            ["sweep", "--analytic-only", "--matrix", "fault-mix"]
        ) == 0
        out = capsys.readouterr().out
        assert "paper-equal" in out and "retention-heavy" in out

    def test_sweep_bad_shapes_rejected_with_clear_error(self):
        import pytest

        with pytest.raises(ValueError, match="expected WORDSxBITS"):
            main(["sweep", "--matrix", "geometry", "--shapes", "512",
                  "--analytic-only"])

    def test_sweep_simulated_table(self, capsys):
        assert main(
            ["sweep", "--rates", "0.01", "--campaigns", "1",
             "--memories", "2", "--workers", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "R meas" in out and "R model (DRF)" in out

    def test_sweep_simulated_json_has_measured_and_analytic(self, capsys):
        import json

        assert main(
            ["sweep", "--json", "--rates", "0.01", "--campaigns", "1",
             "--memories", "2", "--workers", "1"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matrix"] == "X1-defect-rate"
        row = payload["rows"][0]
        assert row["measured_r_mean"] > 1.0
        assert row["analytic_r"] > 1.0 and row["analytic_r_drf"] > 1.0
        assert row["measured_k_mean"] is not None

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "3.0" in out and "scan_en" in out


class TestBench:
    def test_quick_batched_fleet_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        assert main(
            ["bench", "--suite", "batched-fleet", "--quick", "--json",
             "--out", str(out_path)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["quick"] is True
        rows = payload["suites"]["batched-fleet"]["rows"]
        assert [row["regime"] for row in rows] == [
            "screening", "diagnostic", "heavy-diagnostic",
        ]
        assert all(row["bit_identical"] for row in rows)
        assert all(row["speedup"] > 0 for row in rows)
        gated = {row["regime"]: row["gated"] for row in rows}
        assert gated == {
            "screening": True, "diagnostic": True, "heavy-diagnostic": True,
        }
        assert json.loads(out_path.read_text()) == payload

    def test_quick_table_rendering(self, capsys):
        assert main(["bench", "--suite", "batched-fleet", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "suite: batched-fleet" in out
        assert "diagnostic" in out and ">=2.5x" in out

    def test_gate_failures_exit_nonzero(self, capsys, monkeypatch):
        import repro.analysis.bench as bench_module

        monkeypatch.setattr(
            bench_module,
            "measure_batched_fleet",
            lambda **kwargs: {
                "config": {},
                "rows": [
                    {
                        "regime": "diagnostic",
                        "defect_rate": 0.001,
                        "gated": True,
                        "speedup_target": 2.5,
                        "numpy_s": 1.0,
                        "batched_s": 1.0,
                        "speedup": 1.0,
                        "failing_reads": 1,
                        "bit_identical": True,
                    }
                ],
            },
        )
        assert main(["bench", "--suite", "batched-fleet", "--json"]) == 1
        captured = capsys.readouterr()
        assert "below the 2.5x target" in captured.err

    def test_unknown_suite_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--suite", "nope"])

    def test_telemetry_lane_attribution_and_trajectory(self, capsys, tmp_path):
        import json

        trajectory = tmp_path / "trajectory.json"
        assert main(
            ["bench", "--suite", "batched-fleet", "--quick", "--telemetry",
             "--trajectory", str(trajectory),
             "--timestamp", "2026-08-08T00:00:00+00:00"]
        ) == 0
        out = capsys.readouterr().out
        assert "lane attribution" in out
        assert "replay accesses" in out
        history = json.loads(trajectory.read_text())
        assert len(history) == 1
        entry = history[0]
        assert entry["timestamp"] == "2026-08-08T00:00:00+00:00"
        assert set(entry["regimes"]) == {
            "screening", "diagnostic", "heavy-diagnostic",
        }
        assert "replay_time_share" in entry["regimes"]["heavy-diagnostic"]


class TestTelemetryFlags:
    def test_fleet_telemetry_summary_and_exports(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["fleet", "--memories", "2", "--campaigns", "2", "--workers", "1",
             "--defect-rate", "0.004", "--telemetry",
             "--trace-out", str(trace), "--metrics-out", str(metrics)]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "replay lane" in out
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert events
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        flat = json.loads(metrics.read_text())
        assert "lane_attribution" in flat and "counters" in flat

    def test_trace_out_implies_telemetry_in_json_mode(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.json"
        assert main(
            ["fleet", "--memories", "2", "--campaigns", "2", "--workers", "1",
             "--defect-rate", "0.004", "--json", "--trace-out", str(trace)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" in payload
        assert trace.exists()

    def test_scenario_telemetry_summary(self, capsys):
        assert main(
            ["scenario", "--memories", "2", "--campaigns", "2",
             "--workers", "1", "--telemetry"]
        ) == 0
        assert "telemetry:" in capsys.readouterr().out
