"""CLI surface of the fault-tolerance layer: retry flags, ``--chaos``,
quarantine output and the resumable-interrupt exit code."""

from __future__ import annotations

import json

import pytest

import repro.engine
import repro.streaming
from repro.cli import EXIT_INTERRUPTED, main

FAST = [
    "--memories", "2", "--campaigns", "6", "--no-baseline",
    "--seed", "7", "--workers", "2", "--chunk-size", "1",
]

MONITOR_FAST = [
    "--windows", "4", "--memories", "4", "--events-per-window", "2",
    "--seed", "23",
]


def _comparable(payload: dict) -> dict:
    for volatile in ("elapsed_s", "campaigns_per_sec", "plan_cache", "telemetry"):
        payload.pop(volatile, None)
    return payload


class TestChaosFlag:
    def test_chaos_run_recovers_and_matches_plain(self, capsys):
        assert main(["fleet", *FAST, "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main([
            "fleet", *FAST, "--json",
            "--chaos", "seed=3,crash=0.5,exception=0.5,max_faults=1",
            "--max-retries", "2",
        ]) == 0
        chaotic = json.loads(capsys.readouterr().out)
        assert _comparable(chaotic) == _comparable(plain)

    def test_quarantine_reports_failures_block(self, capsys):
        assert main([
            "fleet", *FAST, "--json",
            "--chaos", "seed=3,exception=1.0,max_faults=99",
            "--max-retries", "1", "--on-chunk-failure", "quarantine",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["campaigns"] == 0
        assert len(payload["failures"]) == 6
        assert payload["failures"][0]["error_kinds"] == [
            "exception", "exception"
        ]

    def test_bad_chaos_spec_exits_2(self, capsys):
        assert main(["fleet", *FAST, "--chaos", "crashes=0.5"]) == 2
        assert "bad --chaos token" in capsys.readouterr().err

    def test_metrics_out_carries_fault_tolerance_counters(
        self, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        assert main([
            "fleet", *FAST, "--json", "--metrics-out", str(metrics),
            "--chaos", "seed=3,exception=1.0",
            "--max-retries", "2",
        ]) == 0
        capsys.readouterr()
        fleet = json.loads(metrics.read_text())["fleet"]
        assert fleet["retries"] >= 6  # every chunk faulted at least once
        assert fleet["quarantined"] == 0
        assert {"respawns", "chunks_recovered"} <= set(fleet)


class TestRetryFlags:
    def test_monitor_accepts_retry_flags(self, capsys):
        assert main([
            "monitor", *MONITOR_FAST,
            "--max-retries", "1", "--on-chunk-failure", "quarantine",
        ]) == 0
        assert "stream: 4 windows" in capsys.readouterr().out

    def test_scenario_accepts_retry_flags(self, capsys):
        assert main([
            "scenario", "--campaigns", "2", "--memories", "2",
            "--seed", "5", "--workers", "1", "--no-baseline",
            "--max-retries", "1", "--chunk-timeout", "60", "--json",
        ]) == 0
        capsys.readouterr()


class TestInterruptExitCode:
    def _interrupting_run_fleet(self, monkeypatch):
        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.engine, "run_fleet", boom)

    def test_checkpointed_interrupt_reports_and_exits_130(
        self, tmp_path, capsys, monkeypatch
    ):
        self._interrupting_run_fleet(monkeypatch)
        store = tmp_path / "ckpt"
        argv = ["fleet", *FAST, "--checkpoint", str(store)]
        assert main(argv) == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert f"chunks persisted in {store}" in err
        assert "resume with: python -m repro fleet" in err
        assert "--resume" in err

    def test_uncheckpointed_interrupt_propagates(self, capsys, monkeypatch):
        self._interrupting_run_fleet(monkeypatch)
        with pytest.raises(KeyboardInterrupt):
            main(["fleet", *FAST])

    def test_checkpointed_monitor_interrupt_exits_130(
        self, tmp_path, capsys, monkeypatch
    ):
        real = repro.streaming.StreamingMonitor

        class InterruptedMonitor(real):
            def windows(self):
                inner = super().windows()
                try:
                    yield next(inner)
                    raise KeyboardInterrupt
                finally:
                    inner.close()

        monkeypatch.setattr(
            repro.streaming, "StreamingMonitor", InterruptedMonitor
        )
        store = tmp_path / "ring"
        assert (
            main(["monitor", *MONITOR_FAST, "--checkpoint", str(store)])
            == EXIT_INTERRUPTED
        )
        err = capsys.readouterr().err
        assert "interrupted: 1 windows completed" in err
        assert f"ring checkpoint in {store}" in err
        assert "resume with: python -m repro monitor" in err
