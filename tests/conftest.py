"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.bank import MemoryBank
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SRAM


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/ fixtures from the current run "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether golden-file tests should rewrite their fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def small_geometry() -> MemoryGeometry:
    """A 16x4 memory: big enough for every March, small enough to be fast."""
    return MemoryGeometry(16, 4, "small")


@pytest.fixture
def medium_geometry() -> MemoryGeometry:
    """A 32x8 memory for serial-interface and converter tests."""
    return MemoryGeometry(32, 8, "medium")


@pytest.fixture
def small_memory(small_geometry) -> SRAM:
    """A fresh fault-free 16x4 SRAM."""
    return SRAM(small_geometry)


@pytest.fixture
def medium_memory(medium_geometry) -> SRAM:
    """A fresh fault-free 32x8 SRAM."""
    return SRAM(medium_geometry)


@pytest.fixture
def hetero_bank() -> MemoryBank:
    """A heterogeneous bank: one wide/large memory plus two smaller ones."""
    return MemoryBank(
        [
            SRAM(MemoryGeometry(16, 8, "wide")),
            SRAM(MemoryGeometry(8, 5, "narrow")),
            SRAM(MemoryGeometry(5, 3, "tiny")),
        ]
    )
