"""Scalar vs lane-plane SEC-DED decode equivalence.

The vectorized decoder must classify every error pattern exactly like the
scalar reference -- that is the whole bit-exactness argument of the ECC
layer -- so this suite fuzzes random widths (including multi-lane words
beyond 64 bits) and random error patterns, comparing outcome flags,
corrected bits and observer accounting.
"""

import numpy as np
import pytest

from repro.ecc import EccObserver, secded_code
from repro.ecc.vector import decode_mismatches, vector_secded
from repro.engine.packing import lanes_for
from repro.util.rng import make_rng


def pack_words(words, bits):
    """Pack integer words into ``(n, lanes)`` uint64 lane planes."""
    lanes = lanes_for(bits)
    planes = np.zeros((len(words), lanes), dtype=np.uint64)
    for row, word in enumerate(words):
        for lane in range(lanes):
            planes[row, lane] = np.uint64((word >> (64 * lane)) & (2**64 - 1))
    return planes


def draw_errors(bits, rng, count=64):
    """Nonzero error patterns biased toward low weights (the interesting
    decode regimes: single, double, triple, aliasing)."""
    errors = []
    while len(errors) < count:
        weight = int(rng.integers(1, 6))
        cells = rng.choice(bits, size=min(weight, bits), replace=False)
        error = 0
        for bit in cells:
            error |= 1 << int(bit)
        errors.append(error)
    return errors


@pytest.mark.parametrize("bits", [1, 2, 7, 8, 16, 21, 32, 33, 64, 65, 100])
def test_vector_decode_matches_scalar(bits):
    code = secded_code(bits)
    vcode = vector_secded(bits)
    rng = make_rng(0xECC0 + bits)
    errors = draw_errors(bits, rng)
    outcome = vcode.decode(pack_words(errors, bits))
    for row, error in enumerate(errors):
        scalar = code.observe(0, error)
        expected_bit = -1 if scalar.corrected_bit is None else scalar.corrected_bit
        assert int(outcome.corrected_bit[row]) == expected_bit, error
        assert bool(outcome.masked[row]) == scalar.masked, error
        assert bool(outcome.uncorrectable[row]) == scalar.uncorrectable, error
        assert bool(outcome.check_corrected[row]) == scalar.check_corrected, error


@pytest.mark.parametrize("bits", [8, 13, 64, 70])
def test_decode_mismatches_matches_scalar_observer(bits):
    code = secded_code(bits)
    rng = make_rng(0xECC1 + bits)
    errors = draw_errors(bits, rng, count=40)
    addresses = [int(rng.integers(0, 32)) for _ in errors]
    expected_words = [int(rng.integers(0, 2**min(bits, 63))) for _ in errors]

    scalar = EccObserver("m", code)
    post_words = [
        scalar.observe(a, w, w ^ e)
        for a, w, e in zip(addresses, expected_words, errors)
    ]

    vector = EccObserver("m", code)
    keep, corrected = decode_mismatches(
        vector, np.asarray(addresses), pack_words(errors, bits)
    )
    assert vector.summary() == scalar.summary()
    for row, (word, error) in enumerate(zip(expected_words, errors)):
        observed = word ^ error
        post = observed
        if int(corrected[row]) >= 0:
            post = observed ^ (1 << int(corrected[row]))
        assert post == post_words[row]
        assert bool(keep[row]) == (post != word)
