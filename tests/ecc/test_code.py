"""Unit tests for the scalar SEC-DED code and the per-session observer.

The decode-contract cases below pin the extended-Hamming rules with
hand-computed syndromes for an 8-bit word, whose data bits sit at Hamming
positions 3, 5, 6, 7, 9, 10, 11, 12:

* bits {0, 1, 2} have positions 3 ^ 5 ^ 6 = 0 with odd parity -> the
  decode resolves into the overall parity bit;
* bits {0, 1} give syndrome 6 with even parity -> double-error detection;
* bits {0, 1, 7} give syndrome 3 ^ 5 ^ 12 = 10, the position of data
  bit 5, with odd parity -> a miscorrection that flips an innocent bit;
* bits {0, 1, 5, 7} give syndrome 0 with even parity -> the error aliases
  onto a codeword and passes silently.
"""

import pytest

from repro.ecc import EccConfig, EccObserver, SecDedCode, secded_code


class TestLayout:
    def test_positions_skip_powers_of_two(self):
        code = SecDedCode(8)
        assert code.positions == (3, 5, 6, 7, 9, 10, 11, 12)
        assert code.syndrome_bits == 4
        assert code.check_bits == 5

    @pytest.mark.parametrize(
        "data_bits,check_bits",
        [(1, 3), (4, 4), (8, 5), (11, 5), (26, 6), (32, 7), (64, 8), (120, 8)],
    )
    def test_check_overhead(self, data_bits, check_bits):
        """Standard (extended) Hamming overhead for common widths."""
        assert SecDedCode(data_bits).check_bits == check_bits

    def test_wide_words_keep_counting(self):
        code = SecDedCode(70)
        assert len(code.positions) == 70
        assert len(set(code.positions)) == 70
        assert all(p & (p - 1) for p in code.positions)

    def test_cache_shares_instances(self):
        assert secded_code(16) is secded_code(16)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            SecDedCode(0)


class TestDecodeContract:
    def test_clean_read_is_a_non_event(self):
        outcome = secded_code(8).observe(0xA5, 0xA5)
        assert outcome.word == 0xA5
        assert outcome.corrected_bit is None
        assert not (outcome.masked or outcome.uncorrectable or outcome.check_corrected)

    @pytest.mark.parametrize("bit", range(8))
    def test_single_bit_error_is_masked(self, bit):
        code = secded_code(8)
        expected = 0b1011_0010
        outcome = code.observe(expected, expected ^ (1 << bit))
        assert outcome.word == expected
        assert outcome.corrected_bit == bit
        assert outcome.masked
        assert not outcome.uncorrectable

    def test_double_error_detected_not_corrected(self):
        code = secded_code(8)
        outcome = code.observe(0x00, 0b11)  # bits {0, 1}: syndrome 6, even
        assert outcome.uncorrectable
        assert outcome.word == 0b11
        assert outcome.corrected_bit is None

    def test_triple_error_can_resolve_into_check_storage(self):
        code = secded_code(8)
        outcome = code.observe(0x00, 0b111)  # bits {0, 1, 2}: syndrome 0, odd
        assert outcome.check_corrected
        assert outcome.word == 0b111
        assert not outcome.masked and not outcome.uncorrectable

    def test_triple_error_can_miscorrect_an_innocent_bit(self):
        code = secded_code(8)
        observed = 0b1000_0011  # bits {0, 1, 7}: syndrome 10 = data bit 5
        outcome = code.observe(0x00, observed)
        assert outcome.corrected_bit == 5
        assert outcome.word == observed ^ (1 << 5)
        assert not outcome.masked  # still mismatches after the flip
        assert not outcome.uncorrectable

    def test_quadruple_error_can_alias_silently(self):
        code = secded_code(8)
        observed = 0b1010_0011  # bits {0, 1, 5, 7}: syndrome 0, even
        outcome = code.observe(0x00, observed)
        assert outcome.word == observed
        assert not (outcome.masked or outcome.uncorrectable or outcome.check_corrected)

    def test_syndrome_helper_matches_positions(self):
        code = secded_code(8)
        assert code.syndrome(0) == 0
        assert code.syndrome(0b1) == 3
        assert code.syndrome(0b11) == 3 ^ 5
        assert code.syndrome(0xFF) == 3 ^ 5 ^ 6 ^ 7 ^ 9 ^ 10 ^ 11 ^ 12


class TestObserver:
    def test_counters_and_corrected_cells(self):
        observer = EccObserver("m0", secded_code(8))
        expected = 0x5A
        assert observer.observe(3, expected, expected ^ 0x04) == expected
        assert observer.observe(3, expected, expected ^ 0x04) == expected
        assert observer.observe(7, expected, expected ^ 0x03) == expected ^ 0x03
        summary = observer.summary()
        assert summary.corrected_reads == 2
        assert summary.masked_reads == 2
        assert summary.uncorrectable_reads == 1
        assert summary.corrected_cells == ((3, 2, 2),)
        refs = summary.corrected_cellrefs()
        assert {(ref.word, ref.bit) for ref in refs} == {(3, 2)}

    def test_check_correction_counts_as_corrected(self):
        observer = EccObserver("m0", secded_code(8))
        observer.observe(0, 0x00, 0b111)
        summary = observer.summary()
        assert summary.corrected_reads == 1
        assert summary.masked_reads == 0
        assert summary.corrected_cells == ()

    def test_config_validates_scheme(self):
        assert EccConfig().scheme == "secded"
        with pytest.raises(ValueError):
            EccConfig(scheme="bch")
