"""Tests for the SEC-DED observation layer."""
