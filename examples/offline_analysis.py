#!/usr/bin/env python3
"""Off-line analysis: scan out diagnosis data and classify the defects.

The paper's Sec. 3.1 flow: diagnosis information is "scanned out for
off-line analysis".  This example runs a diagnosis session, serializes the
failure records through the scan chain exactly as a tester would receive
them, parses the bitstream back, and classifies each failing cell's
probable fault type with the syndrome dictionary.

Run:  python examples/offline_analysis.py
"""

from repro import FastDiagnosisScheme, FaultInjector, MemoryBank, SRAM
from repro.analysis.resolution import DiagnosisDictionary
from repro.core.scanout import DiagnosisScanChain
from repro.faults import (
    DataRetentionFault,
    StuckAtFault,
    TransitionFault,
    WeakCellDefect,
)
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.util.records import format_table


def main() -> None:
    geometry = MemoryGeometry(8, 4, "dut")
    memory = SRAM(geometry)
    injector = FaultInjector()
    ground_truth = {
        "stuck-at-1": StuckAtFault(CellRef(2, 1), 1),
        "transition-up": TransitionFault(CellRef(5, 0), rising=True),
        "data-retention-1": DataRetentionFault(CellRef(6, 3), 1),
        "weak-cell": WeakCellDefect(CellRef(1, 2), 1),
    }
    injector.inject(memory, list(ground_truth.values()))

    # On-chip: one diagnosis session, then scan the records out.
    report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
    chain = DiagnosisScanChain(geometry)
    bitstream = chain.encode(report.failures["dut"])
    print(f"scan-out: {len(bitstream)} bits "
          f"({chain.frame_bits} bits/frame x {len(report.failures['dut'])} frames)\n")

    # Off-line: parse the stream and classify with the syndrome dictionary.
    frames = chain.decode(bitstream)
    dictionary = DiagnosisDictionary.build(geometry)

    by_cell = {}
    for frame in frames:
        for cell in frame.failing_cells():
            by_cell.setdefault(cell, []).append(frame)

    rows = []
    failures_by_cell = {}
    for failure in report.failures["dut"]:
        for cell in failure.failing_cells():
            failures_by_cell.setdefault(cell, []).append(failure)
    truth_by_cell = {
        fault.victims[0]: name for name, fault in ground_truth.items()
    }
    for cell in sorted(by_cell):
        candidates = dictionary.classify(failures_by_cell[cell])
        rows.append(
            {
                "cell": str(cell),
                "frames": len(by_cell[cell]),
                "dictionary candidates": ", ".join(sorted(candidates)) or "(novel)",
                "ground truth": truth_by_cell.get(cell, "?"),
            }
        )
    print(format_table(rows))
    print("\nevery injected defect was localized and classified off-line,")
    print("including the retention fault and the weak cell (NWRTM coverage).")


if __name__ == "__main__":
    main()
