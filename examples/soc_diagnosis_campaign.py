#!/usr/bin/env python3
"""A full SoC diagnosis campaign: baseline vs proposed, then repair.

The scenario the paper's introduction motivates: a networking SoC with
several small heterogeneous buffers [1].  We run both diagnosis
architectures over the same fault populations and compare diagnosis time,
coverage and localization, then repair with the backup memories and verify.

Run:  python examples/soc_diagnosis_campaign.py
"""

from repro import FastDiagnosisScheme, FaultInjector, HuangJoneScheme, RepairController
from repro.faults.population import sample_population
from repro.soc.chip import SoCConfig
from repro.util.records import format_table
from repro.util.units import format_duration_ns


def build_faulty_bank(soc, seed):
    bank = soc.build_bank()
    injector = FaultInjector()
    for index, memory in enumerate(bank):
        population = sample_population(memory.geometry, 0.005, rng=seed + index)
        injector.inject(memory, population.faults)
    return bank, injector


def main() -> None:
    soc = SoCConfig.buffer_cluster()
    print(f"SoC: {soc!r}")
    print(f"total cells: {soc.total_cells}, heterogeneous: {soc.is_heterogeneous()}")
    print()

    # --- Baseline: Huang-Jone bi-directional serial scheme [7, 8] -------
    bank_b, injector_b = build_faulty_bank(soc, seed=500)
    baseline = HuangJoneScheme(bank_b, period_ns=soc.period_ns)
    baseline_report = baseline.diagnose(injector_b, include_drf=True)

    # --- Proposed: SPC/PSC + March CW + NWRTM ---------------------------
    bank_p, injector_p = build_faulty_bank(soc, seed=500)
    proposed = FastDiagnosisScheme(bank_p, period_ns=soc.period_ns)
    proposed_report = proposed.diagnose()

    rows = [
        {
            "scheme": "baseline [7,8] + DRF pauses",
            "time": format_duration_ns(baseline_report.time_ns),
            "pauses": format_duration_ns(baseline_report.pause_ns),
            "iterations": baseline_report.iterations,
            "localized": len(baseline_report.localized),
            "missed": len(baseline_report.missed),
        },
        {
            "scheme": "proposed (March CW-NW)",
            "time": format_duration_ns(proposed_report.time_ns),
            "pauses": format_duration_ns(proposed_report.pause_ns),
            "iterations": 1,
            "localized": sum(
                len(proposed_report.detected_cells(m.name)) for m in bank_p
            ),
            "missed": injector_p.total
            - sum(
                1
                for score in proposed_report.score_against(injector_p)
                if score.localized
            ),
        },
    ]
    print(format_table(rows))
    speedup = baseline_report.time_ns / proposed_report.time_ns
    print(f"\ndiagnosis-time reduction factor: {speedup:.1f}x")

    # --- Repair and verify ----------------------------------------------
    repair = RepairController(bank_p, spares_per_memory=32)
    result = repair.apply(proposed_report)
    print(f"\nrepair: {result.total_repaired_words} words remapped to spares, "
          f"{result.detached_faults} faults removed, "
          f"fully repaired: {result.fully_repaired}")
    verification = proposed.diagnose()
    print(f"verification session after repair: "
          f"{'PASS' if verification.passed else 'FAIL'}")


if __name__ == "__main__":
    main()
