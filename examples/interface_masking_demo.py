#!/usr/bin/env python3
"""Serial fault masking: why the paper replaces serial interfaces entirely.

Walks one defective word through the three data-path generations:

1. the [9, 10] single-directional serial interface -- an upstream stuck
   cell starves every cell behind it of test data (masking);
2. the [7, 8] bi-directional interface -- both sides become reachable,
   but the observation stream still pinpoints at most one fault per
   direction, forcing the iterate-repair loop;
3. the paper's SPC/PSC pair -- responses never travel through memory
   cells, so every fault in the word is localized in a single session.

Run:  python examples/interface_masking_demo.py
"""

from repro import FastDiagnosisScheme, FaultInjector, MemoryBank, StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.memory.sram import SRAM
from repro.serial.bidirectional import BidirectionalSerialInterface
from repro.serial.shift_register import ShiftDirection
from repro.serial.unidirectional import UnidirectionalSerialInterface
from repro.util.bitops import int_to_bits, mask

BITS = 16
FAULTY_BITS = (4, 9, 13)  # three stuck-at-0 cells in one word


def faulty_memory() -> SRAM:
    memory = SRAM(MemoryGeometry(2, BITS, "word"))
    for bit in FAULTY_BITS:
        StuckAtFault(CellRef(0, bit), 0).attach(memory)
    return memory


def show_word(label: str, word: int) -> None:
    bits = "".join(str(b) for b in reversed(int_to_bits(word, BITS)))
    print(f"  {label:34s} {bits}   (MSB..LSB)")


def main() -> None:
    print(f"one {BITS}-bit word, stuck-at-0 cells at bits {FAULTY_BITS}\n")

    print("1) single-directional serial write of all-ones [9, 10]:")
    memory = faulty_memory()
    UnidirectionalSerialInterface(memory).fill_word(0, mask(BITS))
    show_word("stored after right-shift fill:", memory.read(0))
    print("   -> every cell above bit 4 was starved of ones (masking)\n")

    print("2) bi-directional serial writes [7, 8]:")
    memory = faulty_memory()
    interface = BidirectionalSerialInterface(memory)
    interface.fill_word(0, mask(BITS), ShiftDirection.RIGHT)
    show_word("after right fill:", memory.read(0))
    interface.fill_word(0, mask(BITS), ShiftDirection.LEFT)
    show_word("after an additional left fill:", memory.read(0))
    print("   -> cells outside the faulty span now reachable; cells between")
    print("      bits 4 and 13 need repair-and-iterate (k iterations)\n")

    print("3) the proposed SPC/PSC scheme:")
    memory = faulty_memory()
    injector = FaultInjector()
    report = FastDiagnosisScheme(MemoryBank([memory])).diagnose()
    cells = sorted(report.detected_cells("word"))
    print(f"   one session localized: {', '.join(str(c) for c in cells)}")
    print("   -> all three faults pinpointed in a single March run")


if __name__ == "__main__":
    main()
