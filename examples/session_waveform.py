#!/usr/bin/env python3
"""Dump a diagnosis session's control signals as a VCD waveform.

The scheme's global control wires (`scan_en`, `NWRTM`, write strobes,
capture strobes) are exactly what a designer would probe on silicon; this
example traces a session and writes a standard VCD file viewable in
GTKWave or any waveform viewer.

Run:  python examples/session_waveform.py [output.vcd]
"""

import sys

from repro import FastDiagnosisScheme, FaultInjector, MemoryBank, SRAM, StuckAtFault
from repro.memory.geometry import CellRef, MemoryGeometry
from repro.util.vcd import TracingMonitor


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "diagnosis_session.vcd"

    memory = SRAM(MemoryGeometry(8, 4, "dut"))
    injector = FaultInjector()
    injector.inject(memory, StuckAtFault(CellRef(3, 1), 1))

    tracer = TracingMonitor()
    scheme = FastDiagnosisScheme(MemoryBank([memory]), monitor=tracer)
    report = scheme.diagnose()

    document = tracer.render()
    with open(output, "w", encoding="ascii") as handle:
        handle.write(document)

    changes = sum(1 for line in document.splitlines() if line.startswith("#"))
    print(f"session: {report.cycles} cycles, "
          f"{report.total_failures} failing reads")
    print(f"wrote {output}: {len(document.splitlines())} lines, "
          f"{changes} time points")
    print("signals: scan_en (PSC shifting), nwrtm (NWRC windows), "
          "write, capture")
    print(f"view with: gtkwave {output}")


if __name__ == "__main__":
    main()
