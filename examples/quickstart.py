#!/usr/bin/env python3
"""Quickstart: diagnose one embedded SRAM with the proposed scheme.

Builds the paper's case-study memory (512 words x 100 bits), injects a
seeded 1%-defect-rate fault population, runs one full diagnosis session
through the SPC/PSC architecture with March CW + NWRTM, and prints what
was found -- in about ten lines of API.

Run:  python examples/quickstart.py
"""

from repro import (
    FastDiagnosisScheme,
    FaultInjector,
    MemoryBank,
    MemoryGeometry,
    SRAM,
    sample_population,
)


def main() -> None:
    # The device under diagnosis: one small embedded SRAM.
    memory = SRAM(MemoryGeometry(512, 100, "esram_0"), period_ns=10.0)

    # Ground truth: a manufacturing fault population at a 1% defect rate
    # (stuck-at, transition, coupling and data-retention faults).
    injector = FaultInjector()
    population = sample_population(memory.geometry, defect_rate=0.01, rng=1)
    injector.inject(memory, population.faults)
    print(f"injected {population.size} faults "
          f"({population.retention_faults} of them data-retention)")

    # One shared BISD controller, one session, zero retention pauses.
    scheme = FastDiagnosisScheme(MemoryBank([memory]))
    report = scheme.diagnose()

    print()
    print("\n".join(report.summary_lines()))
    print()

    # Score against the ground truth: every fault localized in one run.
    rate = report.localization_rate(injector)
    print(f"localization rate vs ground truth: {rate:.1%}")
    cells = report.detected_cells("esram_0")
    print(f"first five localized cells: "
          f"{', '.join(str(c) for c in sorted(cells)[:5])} ...")


if __name__ == "__main__":
    main()
