#!/usr/bin/env python3
"""NWRTM at two abstraction levels: switch-level cell vs full scheme.

Part 1 replays the paper's Fig. 6 argument on a switch-level 6T cell
column: a normal write hides an open pull-up (it only shows after a 100 ms
retention pause), while the No-Write-Recovery cycle exposes it -- and the
resistive "weak cell" that nothing else can see -- instantly.

Part 2 shows the same physics through the full diagnosis scheme: March CW
without NWRTM misses the DRF; March CW-NW catches it with zero pause.

Run:  python examples/drf_nwrtm_demo.py
"""

from repro import (
    DataRetentionFault,
    FastDiagnosisScheme,
    FaultInjector,
    MemoryBank,
    MemoryGeometry,
    SRAM,
    WeakCellDefect,
    march_cw,
    march_cw_nw,
)
from repro.electrical.column import CellColumn
from repro.electrical.write_cycle import WriteKind
from repro.memory.geometry import CellRef
from repro.util.records import format_table


def switch_level_demo() -> None:
    print("--- Part 1: switch-level 6T column (Fig. 6) ---")
    column = CellColumn.build(
        rows=16,
        open_pullup_rows={4: "a"},       # a data-retention fault
        resistive_pullup_rows={11: "a"},  # a weak (reliability-only) cell
        retention_ns=1_000.0,
    )
    rows = []

    column.write_all(0)
    column.write_all(1)
    rows.append({"step": "normal write 1, read now",
                 "failing rows": column.rows_not_storing(1)})

    column.elapse(100e6)  # the production-test 100 ms pause
    rows.append({"step": "wait 100 ms, read again",
                 "failing rows": column.rows_not_storing(1)})

    column2 = CellColumn.build(
        rows=16, open_pullup_rows={4: "a"}, resistive_pullup_rows={11: "a"}
    )
    column2.write_all(0)
    column2.write_all(1, WriteKind.NWRC)
    rows.append({"step": "NWRC write 1, read now",
                 "failing rows": column2.rows_not_storing(1)})

    print(format_table(rows))
    print("row 4 = open pull-up (DRF), row 11 = resistive pull-up (weak)\n")


def scheme_level_demo() -> None:
    print("--- Part 2: the same defects through the full scheme ---")
    rows = []
    for factory, label in ((march_cw, "March CW (no NWRTM)"),
                           (march_cw_nw, "March CW-NW (NWRTM)")):
        memory = SRAM(MemoryGeometry(64, 16, "demo"))
        injector = FaultInjector()
        injector.inject(memory, [
            DataRetentionFault(CellRef(4, 7), fragile_value=1),
            WeakCellDefect(CellRef(11, 3), weak_value=1),
        ])
        scheme = FastDiagnosisScheme(MemoryBank([memory]),
                                     algorithm_factory=factory)
        report = scheme.diagnose()
        rows.append({
            "algorithm": label,
            "cells localized": sorted(str(c) for c in report.detected_cells("demo")),
            "pause time": f"{report.pause_ns / 1e6:.0f} ms",
        })
    print(format_table(rows))


def main() -> None:
    switch_level_demo()
    scheme_level_demo()


if __name__ == "__main__":
    main()
