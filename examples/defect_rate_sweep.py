#!/usr/bin/env python3
"""Defect-rate sweep: why the baseline's diagnosis time explodes.

The [7, 8] baseline localizes at most two faults per M1 iteration, so its
diagnosis time grows linearly with the defect rate; the proposed scheme
localizes everything in a single March run regardless.  This sweep
reproduces the relationship and prints the paper's case-study point
(1% -> k = 96 -> R >= 84) in context.

Run:  python examples/defect_rate_sweep.py
"""

from repro.analysis.figures import ascii_plot
from repro.analysis.sweeps import sweep_defect_rate, sweep_geometry
from repro.util.records import format_table


def main() -> None:
    print("Reduction factor vs defect rate (case-study memory, 512 x 100):\n")
    rates = [0.0001, 0.0005, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1]
    rows = sweep_defect_rate(rates)
    print(format_table(rows))
    print()
    print(
        ascii_plot(
            rates,
            [float(r["R"]) for r in rows],
            title="R (no DRF) vs defect rate  [log y]",
            log_y=True,
        )
    )

    print("\nReduction factor vs memory geometry (1% defect rate):\n")
    shapes = [(128, 16), (256, 32), (512, 64), (512, 100), (1024, 128)]
    print(format_table(sweep_geometry(shapes)))

    print(
        "\nReading the tables: the baseline time T[7,8] scales with k "
        "(the fault count), while T_proposed is fixed by Eq. (2); the "
        "paper's '1% defect rate -> R of at least 84' is the k = 96 row."
    )


if __name__ == "__main__":
    main()
